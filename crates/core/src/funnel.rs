//! The Fig. 1 fault-list funnel.
//!
//! The paper's Fig. 1 draws the fault list narrowing from *all faults*
//! (schematic-complete) through L²RFM (pre-layout local realistic
//! mapping) to the GLRFM list LIFT produces from the final layout. The
//! arrow widths are the list sizes — this module computes them.

/// One stage of the funnel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunnelStage {
    /// Stage name (`all faults`, `L2RFM`, `GLRFM`).
    pub name: String,
    /// Fault-list size at this stage.
    pub count: usize,
}

/// The complete funnel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultFunnel {
    /// Stages from widest to narrowest.
    pub stages: Vec<FunnelStage>,
}

impl FaultFunnel {
    /// Builds the funnel from the three list sizes.
    pub fn new(all_faults: usize, l2rfm: usize, glrfm: usize) -> Self {
        FaultFunnel {
            stages: vec![
                FunnelStage {
                    name: "all faults".into(),
                    count: all_faults,
                },
                FunnelStage {
                    name: "L2RFM".into(),
                    count: l2rfm,
                },
                FunnelStage {
                    name: "GLRFM (LIFT)".into(),
                    count: glrfm,
                },
            ],
        }
    }

    /// Total reduction from first to last stage, percent.
    pub fn total_reduction_percent(&self) -> f64 {
        match (self.stages.first(), self.stages.last()) {
            (Some(first), Some(last)) if first.count > 0 => {
                100.0 * (1.0 - last.count as f64 / first.count as f64)
            }
            _ => 0.0,
        }
    }

    /// Renders the funnel as ASCII art (arrow width ∝ list size), the
    /// terminal version of Fig. 1.
    pub fn render(&self, max_width: usize) -> String {
        let widest = self
            .stages
            .iter()
            .map(|s| s.count)
            .max()
            .unwrap_or(1)
            .max(1);
        let mut out = String::new();
        for s in &self.stages {
            let w = ((s.count as f64 / widest as f64) * max_width as f64).round() as usize;
            out.push_str(&format!(
                "{:>14} | {} {}\n",
                s.name,
                "█".repeat(w.max(1)),
                s.count
            ));
        }
        out.push_str(&format!(
            "{:>14} | total reduction {:.0} %\n",
            "",
            self.total_reduction_percent()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_math() {
        // The paper's VCO: 152 schematic faults -> 70 after GLRFM.
        let funnel = FaultFunnel::new(152, 120, 70);
        assert!((funnel.total_reduction_percent() - 53.9).abs() < 0.2);
    }

    #[test]
    fn render_is_monotone_in_width() {
        let funnel = FaultFunnel::new(100, 60, 30);
        let art = funnel.render(40);
        let widths: Vec<usize> = art
            .lines()
            .take(3)
            .map(|l| l.chars().filter(|&c| c == '█').count())
            .collect();
        assert!(widths[0] > widths[1] && widths[1] > widths[2], "{art}");
        assert!(art.contains("100"));
        assert!(art.contains("GLRFM"));
    }

    #[test]
    fn empty_funnel_is_safe() {
        let funnel = FaultFunnel::new(0, 0, 0);
        assert_eq!(funnel.total_reduction_percent(), 0.0);
        let _ = funnel.render(10);
    }
}
