//! L²RFM — Local Layout Realistic Faults Mapping (paper ref [18]).
//!
//! Before the final layout exists, the schematic-complete fault list
//! can already be thinned using *element-local* layout knowledge: each
//! element type has a known cell layout, so the realistic fault
//! patterns *within one element* (which terminal pairs can actually
//! bridge, which terminals can open) can be pre-characterised once and
//! applied per instance. This module does exactly that with the same
//! machinery as the global pass: it generates a representative layout
//! of a single MOSFET, runs LIFT on it, and records which local fault
//! patterns survive.

use anafault::{Fault, FaultEffect};
use extract::{connectivity, ExtractOptions};
use geom::Point;
use layout::{CellBuilder, Layer, Library, MosParams, MosStyle, Technology};
use lift::{extract_faults, LiftFaultClass, LiftOptions};
use std::collections::HashSet;

/// The per-element realistic fault patterns L²RFM derives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalFaultPatterns {
    /// Realistic terminal-pair shorts inside one MOS: subset of
    /// `{"gd", "gs", "ds"}`.
    pub mos_shorts: HashSet<String>,
    /// Realistic terminal opens inside one MOS: subset of
    /// `{"d", "g", "s"}`.
    pub mos_opens: HashSet<String>,
}

/// Characterises the local fault patterns of a single MOSFET layout in
/// the given technology.
pub fn characterise_mos(tech: &Technology) -> LocalFaultPatterns {
    // A representative single-transistor cell with its three terminals
    // routed out (so opens have something to separate).
    let mut b = CellBuilder::new("l2rfm_mos", tech);
    let geo = b.mosfet(
        Point::new(0, 0),
        &MosParams {
            w: 6_000,
            l: 1_000,
            style: MosStyle::Nmos,
        },
    );
    let stub = geo.gate_stub.center();
    let gate_c = Point::new(stub.x, stub.y - 4_000);
    b.min_wire(Layer::Poly, &[stub, gate_c]);
    b.contact(gate_c, Layer::Poly);
    b.wire(
        Layer::Metal1,
        &[gate_c, Point::new(gate_c.x - 12_000, gate_c.y)],
        1_500,
    );
    b.label(Layer::Metal1, Point::new(gate_c.x - 11_000, gate_c.y), "g");
    let s = geo.source_pad.center();
    b.wire(Layer::Metal1, &[s, Point::new(s.x, s.y + 12_000)], 1_500);
    b.label(Layer::Metal1, Point::new(s.x, s.y + 11_000), "s");
    let d = geo.drain_pad.center();
    b.wire(Layer::Metal1, &[d, Point::new(d.x, d.y + 12_000)], 1_500);
    b.label(Layer::Metal1, Point::new(d.x, d.y + 11_000), "d");

    let cell = b.finish();
    let mut lib = Library::new("l2rfm");
    lib.add_cell(cell);
    let flat = lib.flatten("l2rfm_mos").expect("cell exists");
    let netlist =
        connectivity::extract(&flat, tech, &ExtractOptions::default()).expect("clean cell");
    let lift_options = LiftOptions {
        ports: vec!["g".into(), "s".into(), "d".into()],
        // Same probability threshold as the global pass: local patterns
        // too unlikely to matter (e.g. opening a doubled S/D contact
        // pair with one spot defect) drop out here, pre-layout.
        p_min: 3e-8,
        ..LiftOptions::default()
    };
    let result = extract_faults(&netlist, tech, &lift_options);

    let mut mos_shorts = HashSet::new();
    let mut mos_opens = HashSet::new();
    let canonical_pair = |a: &str, b: &str| {
        let mut pair = [terminal_letter(a), terminal_letter(b)];
        pair.sort_unstable();
        format!("{}{}", pair[0], pair[1])
    };
    for f in &result.faults {
        match (&f.class, &f.fault.effect) {
            (LiftFaultClass::Bridge, FaultEffect::Short { a, b }) => {
                let (ta, tb) = (terminal_letter(a), terminal_letter(b));
                if ta != '?' && tb != '?' {
                    mos_shorts.insert(canonical_pair(a, b));
                    let _ = (ta, tb);
                }
            }
            (LiftFaultClass::StuckOpen, FaultEffect::OpenTerminal { terminal, .. }) => {
                let letter = match terminal {
                    0 => "d",
                    1 => "g",
                    2 => "s",
                    _ => "?",
                };
                mos_opens.insert(letter.to_string());
            }
            _ => {}
        }
    }
    LocalFaultPatterns {
        mos_shorts,
        mos_opens,
    }
}

fn terminal_letter(net: &str) -> char {
    match net {
        "g" | "d" | "s" => net.chars().next().expect("single letter"),
        _ => '?',
    }
}

/// Filters a schematic-complete fault list down to the locally
/// realistic subset (the paper's Fig. 1 middle stage).
pub fn apply_patterns(faults: &[Fault], patterns: &LocalFaultPatterns) -> Vec<Fault> {
    faults
        .iter()
        .filter(|f| keep(f, patterns))
        .cloned()
        .collect()
}

fn keep(f: &Fault, patterns: &LocalFaultPatterns) -> bool {
    match &f.effect {
        FaultEffect::ElementShort { element, t1, t2 } if element.starts_with('M') => {
            let pair = match (t1.min(t2), t1.max(t2)) {
                (0, 1) => "dg",
                (0, 2) => "ds",
                (1, 2) => "gs",
                _ => return true,
            };
            // Normalise to sorted letters used by characterise_mos.
            let sorted: String = {
                let mut cs: Vec<char> = pair.chars().collect();
                cs.sort_unstable();
                cs.into_iter().collect()
            };
            patterns.mos_shorts.contains(&sorted)
        }
        FaultEffect::OpenTerminal { element, terminal } if element.starts_with('M') => {
            let letter = match terminal {
                0 => "d",
                1 => "g",
                2 => "s",
                _ => return true,
            };
            patterns.mos_opens.contains(letter)
        }
        _ => true, // capacitors and non-element faults pass through
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lift::schematic::schematic_faults;

    #[test]
    fn single_mos_patterns_are_physical() {
        let tech = Technology::generic_1um();
        let p = characterise_mos(&tech);
        // The drain-source bridge across a 1 µm channel is always
        // realistic.
        assert!(p.mos_shorts.contains("ds"), "{:?}", p.mos_shorts);
        // Gate open (poly riser / contact) is realistic.
        assert!(p.mos_opens.contains("g"), "{:?}", p.mos_opens);
        // Everything extracted is one of the known patterns.
        for s in &p.mos_shorts {
            assert!(["dg", "ds", "gs"].contains(&s.as_str()), "{s}");
        }
    }

    #[test]
    fn applying_patterns_reduces_the_vco_list() {
        let tech = Technology::generic_1um();
        let patterns = characterise_mos(&tech);
        let all = schematic_faults(&vco::vco_schematic()).all();
        let reduced = apply_patterns(&all, &patterns);
        assert!(reduced.len() <= all.len());
        assert!(
            !reduced.is_empty(),
            "local mapping must keep the realistic core"
        );
        // Capacitor faults are untouched by MOS patterns.
        assert!(reduced.iter().any(|f| f.label.contains("C1")));
    }
}
