//! # cat-core — the linked Computer-Aided Test system
//!
//! The paper's headline contribution is not LIFT or AnaFAULT alone but
//! the *link*: one CAT environment that takes a finished layout, pulls a
//! realistic weighted fault list out of it, and drives the analogue
//! fault simulator with that list instead of the bloated
//! schematic-complete one. This crate is that link:
//!
//! * [`flow`] — [`flow::CatSystem`]: layout → extraction → LIFT →
//!   simulation-ready circuit and fault list, campaigns configured via
//!   [`anafault::CampaignBuilder`] and executed (optionally streaming
//!   per-fault progress) over the extracted list, all under the unified
//!   [`flow::CatError`];
//! * [`funnel`] — the Fig. 1 fault-list funnel: *all faults* →
//!   L²RFM → GLRFM, with the list size at each stage;
//! * [`l2rfm`] — the pre-layout "Local Layout Realistic Faults
//!   Mapping" stage (paper ref [18]): per-element realistic fault
//!   patterns derived from representative single-element layouts,
//!   applied to the schematic before the real layout exists.

pub mod flow;
pub mod funnel;
pub mod l2rfm;

pub use flow::{CatError, CatSystem};
pub use funnel::{FaultFunnel, FunnelStage};
