//! # extract — transistor-level circuit extraction from layout
//!
//! LIFT performs fault extraction *simultaneously with* transistor-level
//! circuit extraction (paper §IV, ref [29]). This crate is the circuit
//! half of that pairing:
//!
//! * [`connectivity`] labels nets: union-find over same-layer shape
//!   contact plus contact/via cuts, with MOS channels splitting the
//!   active layer into source/drain sides;
//! * [`devices`] recognises MOSFETs (poly ∩ active), derives W/L and
//!   polarity (n-well ⇒ PMOS), and finds plate capacitors;
//! * [`lvs`] compares an extracted netlist against a schematic
//!   (Weisfeiler–Lehman refinement), the classic layout-versus-schematic
//!   check used by the integration tests to prove the generated VCO
//!   layout matches the paper's circuit.
//!
//! The output type [`ExtractedNetlist`] keeps full geometric provenance
//! (net fragments per layer, cut positions, channel rectangles) because
//! the fault extractor needs exactly that information to compute
//! critical areas per electrical net.

pub mod circuit;
pub mod connectivity;
pub mod devices;
pub mod lvs;

use geom::{Coord, Point, Rect, Region};
use layout::Layer;

/// Identifier of an extracted net.
pub type NetId = usize;

/// A connected piece of conductor geometry on one layer.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// The conductor layer.
    pub layer: Layer,
    /// The merged geometry of this fragment.
    pub region: Region,
    /// The net this fragment belongs to.
    pub net: NetId,
}

/// A contact or via cut joining two fragments.
#[derive(Debug, Clone)]
pub struct Cut {
    /// `Contact` or `Via1`.
    pub layer: Layer,
    /// The cut square.
    pub rect: Rect,
    /// Net the cut belongs to (both joined fragments share it).
    pub net: NetId,
    /// Index into [`ExtractedNetlist::fragments`] of the upper conductor.
    pub upper_fragment: usize,
    /// Index into [`ExtractedNetlist::fragments`] of the lower conductor.
    pub lower_fragment: usize,
}

/// An extracted net: a name (from labels or synthesised) plus its
/// fragments.
#[derive(Debug, Clone)]
pub struct Net {
    /// Net name: label text when labelled, else `n<id>`.
    pub name: String,
    /// Indices into [`ExtractedNetlist::fragments`].
    pub fragments: Vec<usize>,
}

/// Recognised MOSFET polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// N-channel (active outside any n-well).
    Nmos,
    /// P-channel (active inside an n-well).
    Pmos,
}

/// A recognised MOSFET.
#[derive(Debug, Clone)]
pub struct Mosfet {
    /// Synthesised instance name (`M1`, `M2`, … in deterministic
    /// layout order).
    pub name: String,
    /// Channel rectangle (poly ∩ active component).
    pub channel: Rect,
    /// Polarity.
    pub polarity: Polarity,
    /// Gate net.
    pub gate: NetId,
    /// Source net (by convention the left/bottom diffusion).
    pub source: NetId,
    /// Drain net.
    pub drain: NetId,
    /// Channel width in nm.
    pub w: Coord,
    /// Channel length in nm.
    pub l: Coord,
}

/// A recognised plate capacitor (large Metal1/Metal2 overlap).
#[derive(Debug, Clone)]
pub struct PlateCap {
    /// Synthesised instance name (`C1`, …).
    pub name: String,
    /// The overlap region's bounding box.
    pub plate: Rect,
    /// Bottom-plate (Metal1) net.
    pub bottom: NetId,
    /// Top-plate (Metal2) net.
    pub top: NetId,
    /// Estimated capacitance in farads.
    pub value: f64,
}

/// A labelled external connection point (where the testbench attaches).
#[derive(Debug, Clone)]
pub struct PortLabel {
    /// Port/net name from the layout label.
    pub name: String,
    /// Fragment index the label landed on.
    pub fragment: usize,
    /// Label anchor position.
    pub at: Point,
}

/// The complete result of circuit extraction.
#[derive(Debug, Clone)]
pub struct ExtractedNetlist {
    /// All nets.
    pub nets: Vec<Net>,
    /// All conductor fragments (geometry provenance for LIFT).
    pub fragments: Vec<Fragment>,
    /// All contact/via cuts.
    pub cuts: Vec<Cut>,
    /// Recognised transistors.
    pub mosfets: Vec<Mosfet>,
    /// Recognised plate capacitors.
    pub capacitors: Vec<PlateCap>,
    /// Labelled external connection points.
    pub ports: Vec<PortLabel>,
    /// Non-fatal oddities encountered (dangling cuts, unlabelled
    /// supplies, …).
    pub warnings: Vec<String>,
}

impl ExtractedNetlist {
    /// The net id carrying `name`, if any.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.nets
            .iter()
            .position(|n| n.name.eq_ignore_ascii_case(name))
    }

    /// All fragments of `net` on `layer`.
    pub fn net_fragments(&self, net: NetId, layer: Layer) -> Vec<&Fragment> {
        self.nets[net]
            .fragments
            .iter()
            .map(|&fi| &self.fragments[fi])
            .filter(|f| f.layer == layer)
            .collect()
    }

    /// Number of distinct nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }
}

/// Extraction tuning knobs.
#[derive(Debug, Clone)]
pub struct ExtractOptions {
    /// Metal1/Metal2 overlaps at least this large (nm²) become plate
    /// capacitors instead of incidental routing crossovers.
    pub cap_threshold: i128,
    /// Capacitance per nm² for recognised plate caps (F/nm²).
    /// The default corresponds to a 1 fF/µm² MIM-style stack.
    pub cap_per_area: f64,
    /// Net name tied to NMOS bulks.
    pub bulk_n: String,
    /// Net name tied to PMOS bulks.
    pub bulk_p: String,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions {
            cap_threshold: 100_000_000, // 100 µm² in nm²
            cap_per_area: 1e-21,        // 1 fF/µm² = 1e-21 F/nm²
            bulk_n: "0".to_string(),
            bulk_p: "vdd".to_string(),
        }
    }
}

/// Errors produced by extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// A MOS channel did not have exactly two diffusion neighbours.
    MalformedDevice(String),
    /// Two different labels landed on the same net.
    LabelConflict {
        /// The net's first name.
        first: String,
        /// The conflicting second name.
        second: String,
    },
}

impl core::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExtractError::MalformedDevice(m) => write!(f, "malformed device: {m}"),
            ExtractError::LabelConflict { first, second } => {
                write!(f, "labels `{first}` and `{second}` short together")
            }
        }
    }
}

impl std::error::Error for ExtractError {}

pub use connectivity::extract;
