//! Layout-versus-schematic comparison.
//!
//! A lightweight LVS based on Weisfeiler–Lehman colour refinement over
//! the device/net bipartite graph. MOS source/drain are treated as
//! interchangeable (the device is symmetric), capacitor plates likewise.
//! Supply nets can be *pinned* by name to anchor the refinement.
//!
//! This is the check the integration suite uses to prove the generated
//! VCO layout implements the paper's 26-transistor schematic.

use crate::{ExtractedNetlist, Polarity};
use spice::{Circuit, ElementKind, MosPolarity};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};

/// One device in the canonical comparison graph.
#[derive(Debug, Clone, PartialEq)]
struct CanonDevice {
    name: String,
    /// "nmos"/"pmos"/"cap".
    kind: &'static str,
    /// W/L quantised to nm (0 for caps) — sizes must match for a device
    /// match.
    w_nm: i64,
    l_nm: i64,
    /// (role, net index); role: "g" gate, "sd" source-or-drain, "p"
    /// plate.
    pins: Vec<(&'static str, usize)>,
}

/// A canonical netlist ready for comparison.
#[derive(Debug, Clone)]
pub struct CanonNetlist {
    devices: Vec<CanonDevice>,
    net_names: Vec<String>,
}

/// The result of an LVS run.
#[derive(Debug, Clone)]
pub struct LvsReport {
    /// True when the netlists are isomorphic under the refinement.
    pub matched: bool,
    /// Human-readable discrepancies (empty when matched).
    pub mismatches: Vec<String>,
    /// Device pairing (layout name, schematic name) for devices whose
    /// colour was unique on both sides.
    pub pairing: Vec<(String, String)>,
}

impl CanonNetlist {
    /// Builds the canonical graph from an extracted layout netlist.
    pub fn from_extracted(n: &ExtractedNetlist) -> Self {
        let mut devices = Vec::new();
        for m in &n.mosfets {
            devices.push(CanonDevice {
                name: m.name.clone(),
                kind: match m.polarity {
                    Polarity::Nmos => "nmos",
                    Polarity::Pmos => "pmos",
                },
                w_nm: m.w,
                l_nm: m.l,
                pins: vec![("g", m.gate), ("sd", m.source), ("sd", m.drain)],
            });
        }
        for c in &n.capacitors {
            devices.push(CanonDevice {
                name: c.name.clone(),
                kind: "cap",
                w_nm: 0,
                l_nm: 0,
                pins: vec![("p", c.bottom), ("p", c.top)],
            });
        }
        CanonNetlist {
            devices,
            net_names: n.nets.iter().map(|net| net.name.clone()).collect(),
        }
    }

    /// Builds the canonical graph from a schematic circuit. Only `M` and
    /// `C` elements participate; sources and resistors are testbench.
    pub fn from_circuit(c: &Circuit) -> Self {
        let mut devices = Vec::new();
        for e in c.elements() {
            match &e.kind {
                ElementKind::Mosfet { model, w, l } => {
                    let kind = match c
                        .models
                        .get(&model.to_ascii_lowercase())
                        .map(|m| m.polarity)
                    {
                        Some(MosPolarity::Pmos) => "pmos",
                        _ => "nmos",
                    };
                    devices.push(CanonDevice {
                        name: e.name.clone(),
                        kind,
                        w_nm: (*w * 1e9).round() as i64,
                        l_nm: (*l * 1e9).round() as i64,
                        pins: vec![("g", e.nodes[1]), ("sd", e.nodes[0]), ("sd", e.nodes[2])],
                    });
                }
                ElementKind::Capacitor { .. } => {
                    devices.push(CanonDevice {
                        name: e.name.clone(),
                        kind: "cap",
                        w_nm: 0,
                        l_nm: 0,
                        pins: vec![("p", e.nodes[0]), ("p", e.nodes[1])],
                    });
                }
                _ => {}
            }
        }
        let net_names = (0..c.node_count())
            .map(|i| c.node_name(i).to_string())
            .collect();
        CanonNetlist { devices, net_names }
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Runs colour refinement; returns per-device and per-net colours.
    fn refine(&self, pinned: &[&str]) -> (Vec<u64>, Vec<u64>) {
        let mut net_color: Vec<u64> = (0..self.net_count())
            .map(|i| {
                let name = self.net_names[i].to_ascii_lowercase();
                if pinned.iter().any(|p| p.eq_ignore_ascii_case(&name)) {
                    hash_one(&("pin", name))
                } else {
                    hash_one(&"net")
                }
            })
            .collect();
        let mut dev_color: Vec<u64> = self
            .devices
            .iter()
            .map(|d| hash_one(&("dev", d.kind, d.w_nm, d.l_nm)))
            .collect();

        // log2(#nets+#devices) rounds suffice for WL; cap generously.
        let rounds = 2
            + (self.net_count() + self.device_count())
                .next_power_of_two()
                .trailing_zeros() as usize;
        for _ in 0..rounds {
            // Device colours from pin (role, net colour) multisets.
            let mut new_dev = Vec::with_capacity(self.devices.len());
            for (di, d) in self.devices.iter().enumerate() {
                let mut pin_sig: Vec<(&str, u64)> = d
                    .pins
                    .iter()
                    .map(|&(role, net)| (role, net_color[net]))
                    .collect();
                pin_sig.sort_unstable();
                new_dev.push(hash_one(&(dev_color[di], pin_sig)));
            }
            // Net colours from attached (role, device colour) multisets.
            let mut incident: Vec<Vec<(&str, u64)>> = vec![Vec::new(); self.net_count()];
            for (di, d) in self.devices.iter().enumerate() {
                for &(role, net) in &d.pins {
                    incident[net].push((role, new_dev[di]));
                }
            }
            let mut new_net = Vec::with_capacity(self.net_count());
            for (ni, inc) in incident.iter_mut().enumerate() {
                inc.sort_unstable();
                new_net.push(hash_one(&(net_color[ni], &*inc)));
            }
            dev_color = new_dev;
            net_color = new_net;
        }
        (dev_color, net_color)
    }
}

fn hash_one<T: Hash>(value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// Compares two canonical netlists. `pinned` names anchor nets present
/// on both sides (supplies, typically `["vdd", "0"]`).
pub fn compare(layout: &CanonNetlist, schematic: &CanonNetlist, pinned: &[&str]) -> LvsReport {
    let mut mismatches = Vec::new();

    // Cheap counts first.
    let count_by_kind = |c: &CanonNetlist| {
        let mut m: BTreeMap<&str, usize> = BTreeMap::new();
        for d in &c.devices {
            *m.entry(d.kind).or_default() += 1;
        }
        m
    };
    let (lk, sk) = (count_by_kind(layout), count_by_kind(schematic));
    if lk != sk {
        mismatches.push(format!(
            "device counts differ: layout {lk:?} vs schematic {sk:?}"
        ));
    }

    let (l_dev, _) = layout.refine(pinned);
    let (s_dev, _) = schematic.refine(pinned);

    // Colour multisets must agree.
    let mut l_sorted = l_dev.clone();
    let mut s_sorted = s_dev.clone();
    l_sorted.sort_unstable();
    s_sorted.sort_unstable();
    if l_sorted != s_sorted {
        // Identify the offending devices for the report.
        let mut l_map: HashMap<u64, Vec<&str>> = HashMap::new();
        for (i, &c) in l_dev.iter().enumerate() {
            l_map.entry(c).or_default().push(&layout.devices[i].name);
        }
        let mut s_map: HashMap<u64, Vec<&str>> = HashMap::new();
        for (i, &c) in s_dev.iter().enumerate() {
            s_map.entry(c).or_default().push(&schematic.devices[i].name);
        }
        for (c, names) in &l_map {
            if !s_map.contains_key(c) {
                mismatches.push(format!(
                    "layout devices {names:?} have no schematic counterpart"
                ));
            }
        }
        for (c, names) in &s_map {
            if !l_map.contains_key(c) {
                mismatches.push(format!(
                    "schematic devices {names:?} have no layout counterpart"
                ));
            }
        }
        if mismatches.is_empty() {
            mismatches.push("device colour multisets differ".to_string());
        }
    }

    // Pair devices whose colour is unique on both sides.
    let mut pairing = Vec::new();
    let mut l_unique: HashMap<u64, usize> = HashMap::new();
    let mut l_dup: HashMap<u64, usize> = HashMap::new();
    for (i, &c) in l_dev.iter().enumerate() {
        *l_dup.entry(c).or_default() += 1;
        l_unique.insert(c, i);
    }
    let mut s_unique: HashMap<u64, usize> = HashMap::new();
    let mut s_dup: HashMap<u64, usize> = HashMap::new();
    for (i, &c) in s_dev.iter().enumerate() {
        *s_dup.entry(c).or_default() += 1;
        s_unique.insert(c, i);
    }
    for (&color, &li) in &l_unique {
        if l_dup[&color] == 1 && s_dup.get(&color) == Some(&1) {
            if let Some(&si) = s_unique.get(&color) {
                pairing.push((
                    layout.devices[li].name.clone(),
                    schematic.devices[si].name.clone(),
                ));
            }
        }
    }
    pairing.sort();

    LvsReport {
        matched: mismatches.is_empty(),
        mismatches,
        pairing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice::{MosModel, Waveform};

    /// Schematic CMOS inverter (plus testbench bits that must be
    /// ignored).
    fn inverter_circuit(w_n: f64) -> Circuit {
        let mut c = Circuit::new("inv");
        c.add_model(MosModel::default_nmos("n"));
        c.add_model(MosModel::default_pmos("p"));
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.add(
            "V1",
            vec![vdd, Circuit::GROUND],
            ElementKind::Vsource {
                wave: Waveform::Dc(5.0),
            },
        );
        c.add(
            "Mn",
            vec![out, inp, Circuit::GROUND, Circuit::GROUND],
            ElementKind::Mosfet {
                model: "n".into(),
                w: w_n,
                l: 1e-6,
            },
        );
        c.add(
            "Mp",
            vec![out, inp, vdd, vdd],
            ElementKind::Mosfet {
                model: "p".into(),
                w: 25e-6,
                l: 1e-6,
            },
        );
        c
    }

    #[test]
    fn identical_circuits_match() {
        let a = CanonNetlist::from_circuit(&inverter_circuit(10e-6));
        let b = CanonNetlist::from_circuit(&inverter_circuit(10e-6));
        let report = compare(&a, &b, &["vdd", "0"]);
        assert!(report.matched, "{:?}", report.mismatches);
        // Both devices have unique colours -> full pairing.
        assert_eq!(report.pairing.len(), 2);
    }

    #[test]
    fn size_mismatch_detected() {
        let a = CanonNetlist::from_circuit(&inverter_circuit(10e-6));
        let b = CanonNetlist::from_circuit(&inverter_circuit(12e-6));
        let report = compare(&a, &b, &["vdd", "0"]);
        assert!(!report.matched);
    }

    #[test]
    fn swapped_source_drain_still_matches() {
        let mut sw = inverter_circuit(10e-6);
        // Swap d/s of the NMOS: index 1 is Mn.
        let idx = sw.find_element("Mn").unwrap();
        sw.elements_mut()[idx].nodes.swap(0, 2);
        let a = CanonNetlist::from_circuit(&inverter_circuit(10e-6));
        let b = CanonNetlist::from_circuit(&sw);
        let report = compare(&a, &b, &["vdd", "0"]);
        assert!(report.matched, "{:?}", report.mismatches);
    }

    #[test]
    fn missing_device_detected() {
        let full = inverter_circuit(10e-6);
        let mut partial = inverter_circuit(10e-6);
        let idx = partial.find_element("Mp").unwrap();
        partial.elements_mut().remove(idx);
        let a = CanonNetlist::from_circuit(&full);
        let b = CanonNetlist::from_circuit(&partial);
        let report = compare(&a, &b, &["vdd", "0"]);
        assert!(!report.matched);
        assert!(report
            .mismatches
            .iter()
            .any(|m| m.contains("counts differ")));
    }

    #[test]
    fn topology_difference_detected() {
        // Same device counts/sizes but the gate of Mp moved to vdd.
        let good = inverter_circuit(10e-6);
        let mut bad = inverter_circuit(10e-6);
        let idx = bad.find_element("Mp").unwrap();
        let vdd = bad.find_node("vdd").unwrap();
        bad.elements_mut()[idx].nodes[1] = vdd;
        let a = CanonNetlist::from_circuit(&good);
        let b = CanonNetlist::from_circuit(&bad);
        let report = compare(&a, &b, &["vdd", "0"]);
        assert!(!report.matched);
    }
}
