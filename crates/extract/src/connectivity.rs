//! Net labelling: fragments, cuts and union-find.

use crate::devices::{recognise_capacitors, recognise_mosfets};
use crate::{Cut, ExtractError, ExtractOptions, ExtractedNetlist, Fragment, Net};
use geom::{Rect, Region};
use layout::{FlatLayout, Layer, Technology};

/// Union-find over fragment indices.
pub(crate) struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    pub(crate) fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    pub(crate) fn find(&mut self, i: usize) -> usize {
        if self.parent[i] != i {
            let root = self.find(self.parent[i]);
            self.parent[i] = root;
        }
        self.parent[i]
    }

    pub(crate) fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Extracts the transistor-level netlist from a flattened layout.
///
/// The pipeline: compute channels (poly ∩ active), split active by the
/// channels, build connected fragments per conductor layer, union
/// fragments through contact/via cuts, name nets from labels, then
/// recognise devices.
///
/// # Errors
/// [`ExtractError::LabelConflict`] when two different labels land on one
/// net, [`ExtractError::MalformedDevice`] when a channel does not have
/// exactly two diffusion neighbours.
pub fn extract(
    flat: &FlatLayout,
    tech: &Technology,
    options: &ExtractOptions,
) -> Result<ExtractedNetlist, ExtractError> {
    let mut warnings = Vec::new();

    // 1. Channel regions.
    let poly_region = Region::from_rects(flat.shapes(Layer::Poly).iter().copied());
    let active_region = Region::from_rects(flat.shapes(Layer::Active).iter().copied());
    let channel_region = poly_region.intersection(&active_region);
    let channels: Vec<Region> = channel_region.connected_components();

    // 2. Conductor fragments. Active is split by the channels so that
    //    source and drain become separate nets.
    let sd_region = active_region.subtract(&channel_region);
    let mut fragments: Vec<(Layer, Region)> = Vec::new();
    for comp in sd_region.connected_components() {
        fragments.push((Layer::Active, comp));
    }
    for comp in poly_region.connected_components() {
        fragments.push((Layer::Poly, comp));
    }
    for layer in [Layer::Metal1, Layer::Metal2] {
        let region = Region::from_rects(flat.shapes(layer).iter().copied());
        for comp in region.connected_components() {
            fragments.push((layer, comp));
        }
    }

    // 3. Union through cuts.
    let mut uf = UnionFind::new(fragments.len());
    let mut raw_cuts: Vec<(Layer, Rect, usize, usize)> = Vec::new();
    for cut_layer in Layer::CUTS {
        let (upper, lowers) = cut_layer.cut_connects().expect("cut layer");
        for &cut in flat.shapes(cut_layer) {
            let find_fragment = |layers: &[Layer]| {
                fragments.iter().position(|(l, region)| {
                    layers.contains(l) && region.rects().iter().any(|r| r.overlaps(&cut))
                })
            };
            let up = find_fragment(&[upper]);
            let low = find_fragment(lowers);
            match (up, low) {
                (Some(u), Some(lo)) => {
                    uf.union(u, lo);
                    raw_cuts.push((cut_layer, cut, u, lo));
                }
                _ => warnings.push(format!(
                    "dangling {cut_layer} cut at {} lands on nothing",
                    cut.center()
                )),
            }
        }
    }

    // 4. Build nets from union-find roots.
    let mut root_to_net: std::collections::HashMap<usize, usize> = Default::default();
    let mut nets: Vec<Net> = Vec::new();
    let mut fragment_nets: Vec<usize> = vec![0; fragments.len()];
    for (fi, slot) in fragment_nets.iter_mut().enumerate() {
        let root = uf.find(fi);
        let net = *root_to_net.entry(root).or_insert_with(|| {
            nets.push(Net {
                name: String::new(),
                fragments: Vec::new(),
            });
            nets.len() - 1
        });
        nets[net].fragments.push(fi);
        *slot = net;
    }

    // 5. Names from labels (also recorded as ports for LIFT's
    //    split-node anchoring).
    let mut ports: Vec<crate::PortLabel> = Vec::new();
    for label in &flat.labels {
        if !label.layer.is_conductor() {
            continue;
        }
        let hit = fragments.iter().position(|(l, region)| {
            *l == label.layer && region.rects().iter().any(|r| r.contains_point(label.at))
        });
        match hit {
            Some(fi) => {
                let net = fragment_nets[fi];
                if nets[net].name.is_empty() {
                    nets[net].name = label.text.to_ascii_lowercase();
                } else if !nets[net].name.eq_ignore_ascii_case(&label.text) {
                    return Err(ExtractError::LabelConflict {
                        first: nets[net].name.clone(),
                        second: label.text.clone(),
                    });
                }
                ports.push(crate::PortLabel {
                    name: label.text.to_ascii_lowercase(),
                    fragment: fi,
                    at: label.at,
                });
            }
            None => warnings.push(format!(
                "label `{}` at {} touches no {} shape",
                label.text, label.at, label.layer
            )),
        }
    }
    for (i, net) in nets.iter_mut().enumerate() {
        if net.name.is_empty() {
            net.name = format!("n{i}");
        }
    }

    let fragments: Vec<Fragment> = fragments
        .into_iter()
        .zip(&fragment_nets)
        .map(|((layer, region), &net)| Fragment { layer, region, net })
        .collect();

    let cuts: Vec<Cut> = raw_cuts
        .into_iter()
        .map(|(layer, rect, u, lo)| Cut {
            layer,
            rect,
            net: fragments[u].net,
            upper_fragment: u,
            lower_fragment: lo,
        })
        .collect();

    let mut netlist = ExtractedNetlist {
        nets,
        fragments,
        cuts,
        mosfets: Vec::new(),
        capacitors: Vec::new(),
        ports,
        warnings,
    };

    // 6. Devices.
    let nwell = Region::from_rects(flat.shapes(Layer::Nwell).iter().copied());
    recognise_mosfets(&mut netlist, &channels, &nwell, tech)?;
    recognise_capacitors(&mut netlist, options);

    Ok(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::Point;
    use layout::{Cell, CellBuilder, Library, MosParams, MosStyle};

    fn tech() -> Technology {
        Technology::generic_1um()
    }

    fn flatten(cell: Cell) -> FlatLayout {
        let mut lib = Library::new("t");
        let name = cell.name().to_string();
        lib.add_cell(cell);
        lib.flatten(&name).unwrap()
    }

    #[test]
    fn two_disjoint_wires_are_two_nets() {
        let t = tech();
        let mut b = CellBuilder::new("w", &t);
        b.wire(
            Layer::Metal1,
            &[Point::new(0, 0), Point::new(10_000, 0)],
            1_500,
        );
        b.wire(
            Layer::Metal1,
            &[Point::new(0, 9_000), Point::new(10_000, 9_000)],
            1_500,
        );
        let n = extract(&flatten(b.finish()), &t, &ExtractOptions::default()).unwrap();
        assert_eq!(n.net_count(), 2);
        assert!(n.mosfets.is_empty());
    }

    #[test]
    fn via_joins_metal_layers() {
        let t = tech();
        let mut b = CellBuilder::new("v", &t);
        b.wire(
            Layer::Metal1,
            &[Point::new(0, 0), Point::new(10_000, 0)],
            1_500,
        );
        b.wire(
            Layer::Metal2,
            &[Point::new(10_000, 0), Point::new(10_000, 10_000)],
            1_500,
        );
        b.via(Point::new(10_000, 0));
        let n = extract(&flatten(b.finish()), &t, &ExtractOptions::default()).unwrap();
        assert_eq!(n.net_count(), 1);
        assert_eq!(n.cuts.len(), 1);
        assert_eq!(n.cuts[0].layer, Layer::Via1);
    }

    #[test]
    fn labels_name_nets() {
        let t = tech();
        let mut b = CellBuilder::new("l", &t);
        b.wire(
            Layer::Metal1,
            &[Point::new(0, 0), Point::new(10_000, 0)],
            1_500,
        );
        b.label(Layer::Metal1, Point::new(5_000, 0), "vdd");
        let n = extract(&flatten(b.finish()), &t, &ExtractOptions::default()).unwrap();
        assert_eq!(n.nets[0].name, "vdd");
        assert_eq!(n.net_by_name("VDD"), Some(0));
    }

    #[test]
    fn conflicting_labels_error() {
        let t = tech();
        let mut b = CellBuilder::new("l", &t);
        b.wire(
            Layer::Metal1,
            &[Point::new(0, 0), Point::new(10_000, 0)],
            1_500,
        );
        b.label(Layer::Metal1, Point::new(1_000, 0), "a");
        b.label(Layer::Metal1, Point::new(9_000, 0), "b");
        let err = extract(&flatten(b.finish()), &t, &ExtractOptions::default()).unwrap_err();
        assert!(matches!(err, ExtractError::LabelConflict { .. }));
    }

    #[test]
    fn single_nmos_extracts_three_nets_plus_gate() {
        let t = tech();
        let mut b = CellBuilder::new("m", &t);
        let g = b.mosfet(
            Point::new(0, 0),
            &MosParams {
                w: 4_000,
                l: 1_000,
                style: MosStyle::Nmos,
            },
        );
        // Label gate, source, drain via their landing pads.
        b.label(Layer::Poly, g.gate_stub.center(), "g");
        b.label(Layer::Metal1, g.source_pad.center(), "s");
        b.label(Layer::Metal1, g.drain_pad.center(), "d");
        let n = extract(&flatten(b.finish()), &t, &ExtractOptions::default()).unwrap();
        assert_eq!(n.mosfets.len(), 1);
        let m = &n.mosfets[0];
        assert_eq!(m.polarity, crate::Polarity::Nmos);
        assert_eq!(m.w, 4_000);
        assert_eq!(m.l, 1_000);
        assert_eq!(n.nets[m.gate].name, "g");
        // Source/drain are the two labelled diffusion nets.
        let sd: Vec<&str> = vec![&n.nets[m.source].name, &n.nets[m.drain].name];
        assert!(sd.contains(&"s") && sd.contains(&"d"));
        assert!(n.warnings.is_empty(), "{:?}", n.warnings);
    }

    #[test]
    fn dangling_cut_warns() {
        let t = tech();
        let mut b = CellBuilder::new("d", &t);
        // A lone contact cut with no conductors under/over it.
        b.rect(Layer::Contact, Rect::new(0, 0, 1_000, 1_000));
        let n = extract(&flatten(b.finish()), &t, &ExtractOptions::default()).unwrap();
        assert_eq!(n.warnings.len(), 1);
        assert!(n.warnings[0].contains("dangling"));
    }
}
