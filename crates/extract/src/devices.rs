//! Device recognition: MOSFETs from channels, capacitors from plates.

use crate::{ExtractError, ExtractOptions, ExtractedNetlist, Mosfet, PlateCap, Polarity};
use geom::{Rect, Region};
use layout::{Layer, Technology};

/// Recognises one MOSFET per channel component and appends them to the
/// netlist, named `M1..Mn` in (y, x) layout order.
pub(crate) fn recognise_mosfets(
    netlist: &mut ExtractedNetlist,
    channels: &[Region],
    nwell: &Region,
    _tech: &Technology,
) -> Result<(), ExtractError> {
    // Deterministic ordering: sort channel components by position,
    // x-major (column reading order, so names follow the floorplan).
    let mut ordered: Vec<Rect> = channels
        .iter()
        .map(|c| c.bounding_box().expect("non-empty channel"))
        .collect();
    ordered.sort_by_key(|r| (r.x0(), r.y0()));

    for (i, channel) in ordered.iter().enumerate() {
        let name = format!("M{}", i + 1);

        // Gate: the poly fragment overlapping the channel.
        let gate_frag = netlist
            .fragments
            .iter()
            .position(|f| {
                f.layer == Layer::Poly && f.region.rects().iter().any(|r| r.overlaps(channel))
            })
            .ok_or_else(|| {
                ExtractError::MalformedDevice(format!("{name}: channel without poly gate"))
            })?;
        let gate = netlist.fragments[gate_frag].net;

        // Source/drain: active fragments touching the channel.
        let mut sd: Vec<(usize, Rect)> = Vec::new();
        for (fi, f) in netlist.fragments.iter().enumerate() {
            if f.layer != Layer::Active {
                continue;
            }
            if f.region.rects().iter().any(|r| r.touches(channel)) {
                let bbox = f.region.bounding_box().expect("non-empty fragment");
                sd.push((fi, bbox));
            }
        }
        if sd.len() != 2 {
            return Err(ExtractError::MalformedDevice(format!(
                "{name}: channel at {channel} touches {} diffusion fragments, expected 2",
                sd.len()
            )));
        }

        // Orientation: S/D on left/right means vertical gate (L = x
        // extent); S/D above/below means horizontal gate.
        let (a, b) = (&sd[0], &sd[1]);
        let horizontal_pair = a.1.center().y == b.1.center().y
            || (a.1.x1() <= channel.x0() || a.1.x0() >= channel.x1());
        let (w, l) = if horizontal_pair {
            (channel.height(), channel.width())
        } else {
            (channel.width(), channel.height())
        };

        // Convention: source = left (or bottom) diffusion.
        let (src, drn) = if horizontal_pair {
            if a.1.x0() <= b.1.x0() {
                (a.0, b.0)
            } else {
                (b.0, a.0)
            }
        } else if a.1.y0() <= b.1.y0() {
            (a.0, b.0)
        } else {
            (b.0, a.0)
        };

        let polarity = if nwell
            .rects()
            .iter()
            .any(|r| r.contains_point(channel.center()))
        {
            Polarity::Pmos
        } else {
            Polarity::Nmos
        };

        netlist.mosfets.push(Mosfet {
            name,
            channel: *channel,
            polarity,
            gate,
            source: netlist.fragments[src].net,
            drain: netlist.fragments[drn].net,
            w,
            l,
        });
    }
    Ok(())
}

/// Recognises plate capacitors: Metal1/Metal2 overlap components whose
/// area exceeds the threshold and whose plates belong to *different*
/// nets (same-net overlaps are via stacks or routing).
pub(crate) fn recognise_capacitors(netlist: &mut ExtractedNetlist, options: &ExtractOptions) {
    let m1_frags: Vec<usize> = (0..netlist.fragments.len())
        .filter(|&i| netlist.fragments[i].layer == Layer::Metal1)
        .collect();
    let m2_frags: Vec<usize> = (0..netlist.fragments.len())
        .filter(|&i| netlist.fragments[i].layer == Layer::Metal2)
        .collect();

    let mut found: Vec<PlateCap> = Vec::new();
    for &f1 in &m1_frags {
        for &f2 in &m2_frags {
            let (bottom_net, top_net) = (netlist.fragments[f1].net, netlist.fragments[f2].net);
            if bottom_net == top_net {
                continue;
            }
            let overlap = netlist.fragments[f1]
                .region
                .intersection(&netlist.fragments[f2].region);
            let area = overlap.area();
            if area >= options.cap_threshold {
                let plate = overlap.bounding_box().expect("non-empty overlap");
                found.push(PlateCap {
                    name: String::new(),
                    plate,
                    bottom: bottom_net,
                    top: top_net,
                    value: area as f64 * options.cap_per_area,
                });
            }
        }
    }
    found.sort_by_key(|c| (c.plate.y0(), c.plate.x0()));
    for (i, mut cap) in found.into_iter().enumerate() {
        cap.name = format!("C{}", i + 1);
        netlist.capacitors.push(cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::extract;
    use geom::Point;
    use layout::{CellBuilder, Library, MosParams, MosStyle};

    fn tech() -> Technology {
        Technology::generic_1um()
    }

    fn run(builder: CellBuilder<'_>) -> ExtractedNetlist {
        let cell = builder.finish();
        let mut lib = Library::new("t");
        let name = cell.name().to_string();
        lib.add_cell(cell);
        let flat = lib.flatten(&name).unwrap();
        extract(&flat, &tech(), &ExtractOptions::default()).unwrap()
    }

    #[test]
    fn pmos_recognised_by_well() {
        let t = tech();
        let mut b = CellBuilder::new("p", &t);
        b.mosfet(
            Point::new(0, 0),
            &MosParams {
                w: 6_000,
                l: 1_000,
                style: MosStyle::Pmos,
            },
        );
        let n = run(b);
        assert_eq!(n.mosfets.len(), 1);
        assert_eq!(n.mosfets[0].polarity, Polarity::Pmos);
    }

    #[test]
    fn two_transistors_shared_diffusion() {
        // Two gates crossing one active strip: three diffusion nets, the
        // middle one shared (a series stack).
        let t = tech();
        let mut b = CellBuilder::new("stack", &t);
        let g1 = b.mosfet(
            Point::new(0, 0),
            &MosParams {
                w: 4_000,
                l: 1_000,
                style: MosStyle::Nmos,
            },
        );
        // Second gate 6 µm to the right; join actives with an explicit
        // strip so the middle S/D is shared.
        let g2 = b.mosfet(
            Point::new(6_000, 0),
            &MosParams {
                w: 4_000,
                l: 1_000,
                style: MosStyle::Nmos,
            },
        );
        b.rect(
            Layer::Active,
            Rect::new(g1.active.x1(), -2_000, g2.active.x0(), 2_000),
        );
        let n = run(b);
        assert_eq!(n.mosfets.len(), 2);
        // The drain of M1 and the source of M2 are the same net.
        assert_eq!(n.mosfets[0].drain, n.mosfets[1].source);
        assert_ne!(n.mosfets[0].source, n.mosfets[1].drain);
    }

    #[test]
    fn plate_capacitor_recognised() {
        let t = tech();
        let mut b = CellBuilder::new("cap", &t);
        // 20 µm × 20 µm plate: 400 µm² >= 100 µm² threshold.
        b.plate_capacitor(Point::new(0, 0), 20_000);
        // Bring out the top plate with an m2 stub so nets differ… they
        // already differ (no via placed).
        let n = run(b);
        assert_eq!(n.capacitors.len(), 1);
        let c = &n.capacitors[0];
        assert_ne!(c.bottom, c.top);
        // Top plate insets by the metal2 min spacing (2 µm) per side:
        // 16 µm × 16 µm = 256 µm² -> 256 fF at 1 fF/µm².
        let inset = t.rules(Layer::Metal2).min_spacing;
        let side_nm = (20_000 - 2 * inset) as f64;
        let expect = side_nm * side_nm * 1e-21; // nm² × 1e-21 F/nm² (1 fF/µm²)
        assert!(
            (c.value - expect).abs() / expect < 0.01,
            "value {}",
            c.value
        );
    }

    #[test]
    fn small_crossover_is_not_a_capacitor() {
        let t = tech();
        let mut b = CellBuilder::new("x", &t);
        b.wire(
            Layer::Metal1,
            &[Point::new(0, 0), Point::new(20_000, 0)],
            1_500,
        );
        b.wire(
            Layer::Metal2,
            &[Point::new(10_000, -10_000), Point::new(10_000, 10_000)],
            1_500,
        );
        let n = run(b);
        assert!(n.capacitors.is_empty());
        assert_eq!(n.net_count(), 2);
    }

    #[test]
    fn via_stack_overlap_not_a_capacitor() {
        let t = tech();
        let mut b = CellBuilder::new("v", &t);
        // Big pads joined by a via: same net, overlap ignored regardless
        // of area.
        b.rect(Layer::Metal1, Rect::new(0, 0, 15_000, 15_000));
        b.rect(Layer::Metal2, Rect::new(0, 0, 15_000, 15_000));
        b.via(Point::new(7_500, 7_500));
        let n = run(b);
        assert!(n.capacitors.is_empty());
        assert_eq!(n.net_count(), 1);
    }
}
