//! Conversion of an extracted netlist into a simulatable circuit.
//!
//! This is the handover point of the paper's flow: the layout-extracted
//! transistor-level netlist becomes the [`spice::Circuit`] AnaFAULT
//! simulates. Node names equal extracted net names, element names equal
//! extracted device names, so LIFT's fault effects (phrased in those
//! names) apply directly.

use crate::{ExtractOptions, ExtractedNetlist, Polarity};
use spice::{Circuit, ElementKind, MosModel};

/// Default NMOS model name used for extracted devices.
pub const NMOS_MODEL: &str = "nmos1u";
/// Default PMOS model name used for extracted devices.
pub const PMOS_MODEL: &str = "pmos1u";

impl ExtractedNetlist {
    /// Builds a [`spice::Circuit`] from the extracted devices.
    ///
    /// Bulk terminals follow `options`: NMOS bulks tie to
    /// `options.bulk_n`, PMOS bulks to `options.bulk_p` (nodes are
    /// created when absent). The caller adds testbench sources
    /// afterwards, connecting by node name.
    pub fn to_circuit(&self, title: &str, options: &ExtractOptions) -> Circuit {
        let mut ckt = Circuit::new(title);
        ckt.add_model(MosModel::default_nmos(NMOS_MODEL));
        ckt.add_model(MosModel::default_pmos(PMOS_MODEL));

        // Create nodes in net order so names are stable.
        let node_ids: Vec<usize> = self.nets.iter().map(|n| ckt.node(&n.name)).collect();
        let bulk_n = ckt.node(&options.bulk_n);
        let bulk_p = ckt.node(&options.bulk_p);

        for m in &self.mosfets {
            let (model, bulk) = match m.polarity {
                Polarity::Nmos => (NMOS_MODEL, bulk_n),
                Polarity::Pmos => (PMOS_MODEL, bulk_p),
            };
            ckt.add(
                m.name.clone(),
                vec![
                    node_ids[m.drain],
                    node_ids[m.gate],
                    node_ids[m.source],
                    bulk,
                ],
                ElementKind::Mosfet {
                    model: model.to_string(),
                    w: m.w as f64 * 1e-9,
                    l: m.l as f64 * 1e-9,
                },
            );
        }
        for c in &self.capacitors {
            ckt.add(
                c.name.clone(),
                vec![node_ids[c.bottom], node_ids[c.top]],
                ElementKind::Capacitor {
                    c: c.value,
                    ic: None,
                },
            );
        }
        ckt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::extract;
    use geom::Point;
    use layout::{CellBuilder, Layer, Library, MosParams, MosStyle, Technology};

    #[test]
    fn inverter_layout_to_circuit() {
        let t = Technology::generic_1um();
        let mut b = CellBuilder::new("inv", &t);
        // NMOS at origin, PMOS above; join gates and drains.
        let n = b.mosfet(
            Point::new(0, 0),
            &MosParams {
                w: 3_000,
                l: 1_000,
                style: MosStyle::Nmos,
            },
        );
        let p = b.mosfet(
            Point::new(0, 20_000),
            &MosParams {
                w: 6_000,
                l: 1_000,
                style: MosStyle::Pmos,
            },
        );
        // Gate connection in poly.
        b.min_wire(
            Layer::Poly,
            &[
                Point::new(0, n.gate_stub.y1()),
                Point::new(0, p.gate_stub.y0() + 19_000),
            ],
        );
        // Drain connection in metal1.
        b.min_wire(Layer::Metal1, &[n.drain_pad.center(), p.drain_pad.center()]);
        b.label(Layer::Poly, Point::new(0, 5_000), "in");
        b.label(Layer::Metal1, n.drain_pad.center(), "out");
        b.label(Layer::Metal1, n.source_pad.center(), "0");
        b.label(Layer::Metal1, p.source_pad.center(), "vdd");
        let cell = b.finish();
        let mut lib = Library::new("l");
        lib.add_cell(cell);
        let flat = lib.flatten("inv").unwrap();
        let opts = crate::ExtractOptions::default();
        let netlist = extract(&flat, &t, &opts).unwrap();
        assert_eq!(netlist.mosfets.len(), 2);
        assert_eq!(netlist.ports.len(), 4);

        let ckt = netlist.to_circuit("inv", &opts);
        assert!(ckt.validate().is_ok());
        assert_eq!(ckt.elements().len(), 2);
        assert!(ckt.find_node("out").is_some());
        assert!(ckt.find_node("in").is_some());
        // Device sizes survive the nm -> m conversion.
        let m1 = &ckt.elements()[0];
        if let ElementKind::Mosfet { w, .. } = m1.kind {
            assert!((w - 3e-6).abs() < 1e-12 || (w - 6e-6).abs() < 1e-12);
        } else {
            panic!("expected mosfet");
        }
    }
}
