//! Edge separation and parallel-run-length between rectangles.
//!
//! Bridging-fault critical area between two wires is, to first order,
//! `L · (x − s)` for a defect of diameter `x`, spacing `s` and facing
//! (parallel-run) length `L` — see Stapper's critical-area model. This
//! module computes `s` and `L` for rectangle pairs.

use crate::coord::Coord;
use crate::rect::Rect;

/// The geometric relation between two rectangles relevant to bridging
/// defects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Separation {
    /// Edge-to-edge spacing in nm (0 when touching, negative overlap is
    /// reported as 0 by [`edge_separation`]).
    pub spacing: Coord,
    /// Length over which the facing edges run in parallel, in nm. Zero
    /// when the rectangles only face diagonally.
    pub parallel_length: Coord,
    /// True when the facing gap is horizontal (rectangles side by side),
    /// false when vertical (stacked).
    pub horizontal_gap: bool,
}

/// Overlap of the two rectangles' projections on one axis.
fn projection_overlap(a0: Coord, a1: Coord, b0: Coord, b1: Coord) -> Coord {
    (a1.min(b1) - a0.max(b0)).max(0)
}

/// Computes the parallel-run length between two rectangles: the overlap
/// of their projections on the axis perpendicular to the gap.
pub fn parallel_run(a: &Rect, b: &Rect) -> Coord {
    let sep = edge_separation(a, b);
    sep.parallel_length
}

/// Computes spacing and parallel-run length between two rectangles.
///
/// Overlapping rectangles report `spacing == 0` (a defect of any size
/// already bridges them — callers normally filter same-net pairs first).
/// Diagonal neighbours report `parallel_length == 0`; their (corner)
/// critical area is second-order and handled separately by the defect
/// engine.
///
/// ```
/// use geom::{edge_separation, Rect};
/// let a = Rect::new(0, 0, 100, 20);
/// let b = Rect::new(0, 50, 100, 70); // 30 above, full 100 overlap
/// let s = edge_separation(&a, &b);
/// assert_eq!(s.spacing, 30);
/// assert_eq!(s.parallel_length, 100);
/// assert!(!s.horizontal_gap);
/// ```
pub fn edge_separation(a: &Rect, b: &Rect) -> Separation {
    let gap_x = (b.x0() - a.x1()).max(a.x0() - b.x1());
    let gap_y = (b.y0() - a.y1()).max(a.y0() - b.y1());
    let overlap_x = projection_overlap(a.x0(), a.x1(), b.x0(), b.x1());
    let overlap_y = projection_overlap(a.y0(), a.y1(), b.y0(), b.y1());

    if gap_x <= 0 && gap_y <= 0 {
        // Overlapping or touching: prefer to report along the axis with
        // the larger projection overlap.
        return Separation {
            spacing: 0,
            parallel_length: overlap_x.max(overlap_y),
            horizontal_gap: overlap_y >= overlap_x,
        };
    }
    if gap_x > 0 && gap_y > 0 {
        // Diagonal: no facing edges.
        return Separation {
            spacing: gap_x.max(gap_y),
            parallel_length: 0,
            horizontal_gap: gap_x >= gap_y,
        };
    }
    if gap_x > 0 {
        Separation {
            spacing: gap_x,
            parallel_length: overlap_y,
            horizontal_gap: true,
        }
    } else {
        Separation {
            spacing: gap_y,
            parallel_length: overlap_x,
            horizontal_gap: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_by_side() {
        let a = Rect::new(0, 0, 10, 100);
        let b = Rect::new(14, 20, 24, 80);
        let s = edge_separation(&a, &b);
        assert_eq!(s.spacing, 4);
        assert_eq!(s.parallel_length, 60);
        assert!(s.horizontal_gap);
        // Symmetric.
        assert_eq!(edge_separation(&b, &a), s);
    }

    #[test]
    fn stacked() {
        let a = Rect::new(0, 0, 100, 10);
        let b = Rect::new(30, 25, 70, 35);
        let s = edge_separation(&a, &b);
        assert_eq!(s.spacing, 15);
        assert_eq!(s.parallel_length, 40);
        assert!(!s.horizontal_gap);
    }

    #[test]
    fn diagonal_has_zero_parallel_run() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(20, 20, 30, 30);
        let s = edge_separation(&a, &b);
        assert_eq!(s.parallel_length, 0);
        assert_eq!(s.spacing, 10);
    }

    #[test]
    fn touching_and_overlapping_report_zero_spacing() {
        let a = Rect::new(0, 0, 10, 10);
        let touching = Rect::new(10, 0, 20, 10);
        assert_eq!(edge_separation(&a, &touching).spacing, 0);
        let overlapping = Rect::new(5, 5, 15, 15);
        assert_eq!(edge_separation(&a, &overlapping).spacing, 0);
    }

    #[test]
    fn parallel_run_helper_matches() {
        let a = Rect::new(0, 0, 10, 100);
        let b = Rect::new(20, 0, 30, 100);
        assert_eq!(parallel_run(&a, &b), 100);
    }
}
