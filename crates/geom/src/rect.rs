//! Axis-aligned rectangles, the primitive shape of the layout database.

use crate::coord::{Coord, Point};

/// An axis-aligned rectangle with `x0 <= x1` and `y0 <= y1`.
///
/// A rectangle is *degenerate* (zero area) when either extent is zero;
/// degenerate rectangles are permitted (they arise as intersections) but
/// most consumers filter them out via [`Rect::is_empty`].
///
/// ```
/// use geom::Rect;
/// let r = Rect::new(0, 0, 10, 5);
/// assert_eq!(r.width(), 10);
/// assert_eq!(r.height(), 5);
/// assert_eq!(r.area(), 50);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rect {
    x0: Coord,
    y0: Coord,
    x1: Coord,
    y1: Coord,
}

impl Rect {
    /// Creates a rectangle from two opposite corners, normalising the
    /// coordinate order.
    pub fn new(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Self {
        Rect {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// Creates a rectangle from corner points.
    pub fn from_points(a: Point, b: Point) -> Self {
        Rect::new(a.x, a.y, b.x, b.y)
    }

    /// Creates a rectangle from its lower-left corner plus width/height.
    ///
    /// # Panics
    /// Panics if `w` or `h` is negative.
    pub fn from_wh(x0: Coord, y0: Coord, w: Coord, h: Coord) -> Self {
        assert!(w >= 0 && h >= 0, "width/height must be non-negative");
        Rect::new(x0, y0, x0 + w, y0 + h)
    }

    /// Left edge.
    pub fn x0(&self) -> Coord {
        self.x0
    }
    /// Bottom edge.
    pub fn y0(&self) -> Coord {
        self.y0
    }
    /// Right edge.
    pub fn x1(&self) -> Coord {
        self.x1
    }
    /// Top edge.
    pub fn y1(&self) -> Coord {
        self.y1
    }

    /// Horizontal extent.
    pub fn width(&self) -> Coord {
        self.x1 - self.x0
    }

    /// Vertical extent.
    pub fn height(&self) -> Coord {
        self.y1 - self.y0
    }

    /// The shorter of width and height — the electrical "line width" used
    /// for open-circuit critical areas.
    pub fn short_side(&self) -> Coord {
        self.width().min(self.height())
    }

    /// The longer of width and height.
    pub fn long_side(&self) -> Coord {
        self.width().max(self.height())
    }

    /// Area in nm² (i128 to avoid overflow on chip-scale rectangles).
    pub fn area(&self) -> i128 {
        self.width() as i128 * self.height() as i128
    }

    /// True when the rectangle has zero area.
    pub fn is_empty(&self) -> bool {
        self.width() == 0 || self.height() == 0
    }

    /// Centre point (rounded towards negative infinity).
    pub fn center(&self) -> Point {
        Point::new(self.x0 + self.width() / 2, self.y0 + self.height() / 2)
    }

    /// Lower-left corner.
    pub fn ll(&self) -> Point {
        Point::new(self.x0, self.y0)
    }

    /// Upper-right corner.
    pub fn ur(&self) -> Point {
        Point::new(self.x1, self.y1)
    }

    /// True when `p` lies inside or on the boundary.
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.x0 && p.x <= self.x1 && p.y >= self.y0 && p.y <= self.y1
    }

    /// True when `other` lies entirely inside (or equals) `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.x0 >= self.x0 && other.x1 <= self.x1 && other.y0 >= self.y0 && other.y1 <= self.y1
    }

    /// True when the rectangles share interior area (touching edges do
    /// not count).
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// True when the rectangles overlap **or** touch along an edge or
    /// corner. Electrical connectivity on a layer uses this predicate.
    pub fn touches(&self, other: &Rect) -> bool {
        self.x0 <= other.x1 && other.x0 <= self.x1 && self.y0 <= other.y1 && other.y0 <= self.y1
    }

    /// The common area of two rectangles, if any interior overlap exists.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let r = Rect {
            x0: self.x0.max(other.x0),
            y0: self.y0.max(other.y0),
            x1: self.x1.min(other.x1),
            y1: self.y1.min(other.y1),
        };
        if r.x0 < r.x1 && r.y0 < r.y1 {
            Some(r)
        } else {
            None
        }
    }

    /// Smallest rectangle containing both inputs.
    pub fn bounding_union(&self, other: &Rect) -> Rect {
        Rect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// Grows the rectangle by `d` on every side (shrinks for negative
    /// `d`; collapses to a degenerate rectangle rather than inverting).
    pub fn expanded(&self, d: Coord) -> Rect {
        let x0 = self.x0 - d;
        let y0 = self.y0 - d;
        let x1 = self.x1 + d;
        let y1 = self.y1 + d;
        if x0 > x1 || y0 > y1 {
            let cx = self.center().x;
            let cy = self.center().y;
            Rect::new(cx, cy, cx, cy)
        } else {
            Rect { x0, y0, x1, y1 }
        }
    }

    /// Translates the rectangle by `(dx, dy)`.
    pub fn translated(&self, dx: Coord, dy: Coord) -> Rect {
        Rect {
            x0: self.x0 + dx,
            y0: self.y0 + dy,
            x1: self.x1 + dx,
            y1: self.y1 + dy,
        }
    }

    /// Minimum axis-wise gap between two rectangles: the Chebyshev-style
    /// separation `max(gap_x, gap_y)` where a negative gap means overlap
    /// in that axis. Two rectangles bridge when a square defect of
    /// diameter `> separation` lands between them.
    pub fn separation(&self, other: &Rect) -> Coord {
        let gap_x = (other.x0 - self.x1).max(self.x0 - other.x1);
        let gap_y = (other.y0 - self.y1).max(self.y0 - other.y1);
        gap_x.max(gap_y)
    }
}

impl core::fmt::Display for Rect {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{},{} .. {},{}]", self.x0, self.y0, self.x1, self.y1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalises_corner_order() {
        let r = Rect::new(10, 20, 0, 5);
        assert_eq!((r.x0(), r.y0(), r.x1(), r.y1()), (0, 5, 10, 20));
    }

    #[test]
    fn area_and_sides() {
        let r = Rect::from_wh(0, 0, 30, 10);
        assert_eq!(r.area(), 300);
        assert_eq!(r.short_side(), 10);
        assert_eq!(r.long_side(), 30);
        assert!(!r.is_empty());
        assert!(Rect::new(5, 5, 5, 9).is_empty());
    }

    #[test]
    fn intersection_cases() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 15, 15);
        assert_eq!(a.intersection(&b), Some(Rect::new(5, 5, 10, 10)));
        // Touching edge: no interior intersection, but `touches` holds.
        let c = Rect::new(10, 0, 20, 10);
        assert_eq!(a.intersection(&c), None);
        assert!(a.touches(&c));
        assert!(!a.overlaps(&c));
        // Disjoint.
        let d = Rect::new(100, 100, 110, 110);
        assert!(!a.touches(&d));
    }

    #[test]
    fn containment() {
        let outer = Rect::new(0, 0, 100, 100);
        assert!(outer.contains_rect(&Rect::new(10, 10, 20, 20)));
        assert!(outer.contains_rect(&outer));
        assert!(!outer.contains_rect(&Rect::new(-1, 0, 5, 5)));
        assert!(outer.contains_point(Point::new(0, 100)));
        assert!(!outer.contains_point(Point::new(101, 0)));
    }

    #[test]
    fn expansion_clamps() {
        let r = Rect::new(0, 0, 10, 10);
        assert_eq!(r.expanded(5), Rect::new(-5, -5, 15, 15));
        // Over-shrink collapses to the centre instead of inverting.
        let collapsed = r.expanded(-6);
        assert!(collapsed.is_empty());
    }

    #[test]
    fn separation_between_rects() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(14, 0, 20, 10); // 4 apart horizontally
        assert_eq!(a.separation(&b), 4);
        assert_eq!(b.separation(&a), 4);
        let c = Rect::new(0, 17, 10, 20); // 7 apart vertically
        assert_eq!(a.separation(&c), 7);
        let o = Rect::new(5, 5, 15, 15); // overlapping
        assert!(a.separation(&o) < 0);
        // Diagonal neighbours: both axis gaps positive -> max.
        let d = Rect::new(13, 12, 20, 20);
        assert_eq!(a.separation(&d), 3);
    }

    #[test]
    fn bounding_union_covers_both() {
        let a = Rect::new(0, 0, 1, 1);
        let b = Rect::new(10, -5, 12, 0);
        let u = a.bounding_union(&b);
        assert!(u.contains_rect(&a) && u.contains_rect(&b));
        assert_eq!(u, Rect::new(0, -5, 12, 1));
    }
}
