//! Uniform-grid spatial index for neighbour queries.
//!
//! LIFT's bridging-fault extraction asks, for every shape, "which other
//! shapes lie within the maximum defect diameter?". A uniform bucket
//! grid answers this in near-constant time for IC layouts, whose shape
//! sizes are tightly distributed around the technology feature size.

use crate::coord::Coord;
use crate::rect::Rect;

/// A uniform-grid index mapping rectangles (with a user payload id) to
/// buckets for fast window queries.
///
/// ```
/// use geom::{GridIndex, Rect};
/// let mut idx = GridIndex::new(100);
/// idx.insert(0, Rect::new(0, 0, 50, 50));
/// idx.insert(1, Rect::new(500, 500, 600, 600));
/// let near_origin = idx.query(&Rect::new(-10, -10, 60, 60));
/// assert_eq!(near_origin, vec![0]);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell: Coord,
    buckets: std::collections::HashMap<(Coord, Coord), Vec<usize>>,
    entries: Vec<Rect>,
    ids: Vec<usize>,
}

impl GridIndex {
    /// Creates an index with the given bucket size in nanometres.
    ///
    /// # Panics
    /// Panics if `cell_size` is not positive.
    pub fn new(cell_size: Coord) -> Self {
        assert!(cell_size > 0, "grid cell size must be positive");
        GridIndex {
            cell: cell_size,
            buckets: Default::default(),
            entries: Vec::new(),
            ids: Vec::new(),
        }
    }

    /// Number of indexed rectangles.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn bucket_range(&self, r: &Rect) -> (Coord, Coord, Coord, Coord) {
        (
            r.x0().div_euclid(self.cell),
            r.y0().div_euclid(self.cell),
            r.x1().div_euclid(self.cell),
            r.y1().div_euclid(self.cell),
        )
    }

    /// Inserts a rectangle with a caller-chosen id (ids may repeat; a
    /// net id or shape index is typical).
    pub fn insert(&mut self, id: usize, rect: Rect) {
        let slot = self.entries.len();
        self.entries.push(rect);
        self.ids.push(id);
        let (bx0, by0, bx1, by1) = self.bucket_range(&rect);
        for bx in bx0..=bx1 {
            for by in by0..=by1 {
                self.buckets.entry((bx, by)).or_default().push(slot);
            }
        }
    }

    /// Returns the distinct ids of rectangles that *touch* the query
    /// window (edge contact counts), sorted ascending.
    pub fn query(&self, window: &Rect) -> Vec<usize> {
        let mut ids = self
            .query_entries(window)
            .iter()
            .map(|&(id, _)| id)
            .collect::<Vec<_>>();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Returns `(id, rect)` pairs touching the query window; a single id
    /// may appear once per matching rectangle.
    pub fn query_entries(&self, window: &Rect) -> Vec<(usize, Rect)> {
        let (bx0, by0, bx1, by1) = self.bucket_range(window);
        let mut slots: Vec<usize> = Vec::new();
        for bx in bx0..=bx1 {
            for by in by0..=by1 {
                if let Some(b) = self.buckets.get(&(bx, by)) {
                    slots.extend_from_slice(b);
                }
            }
        }
        slots.sort_unstable();
        slots.dedup();
        slots
            .into_iter()
            .filter(|&s| self.entries[s].touches(window))
            .map(|s| (self.ids[s], self.entries[s]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_finds_touching_rects_only() {
        let mut idx = GridIndex::new(10);
        idx.insert(7, Rect::new(0, 0, 10, 10));
        idx.insert(8, Rect::new(30, 30, 40, 40));
        // Touching at the corner counts.
        assert_eq!(idx.query(&Rect::new(10, 10, 20, 20)), vec![7]);
        // Far away finds nothing.
        assert!(idx.query(&Rect::new(100, 100, 110, 110)).is_empty());
    }

    #[test]
    fn large_rect_spans_many_buckets() {
        let mut idx = GridIndex::new(10);
        idx.insert(1, Rect::new(0, 0, 1000, 5));
        // Query any window along the strip.
        for x in (0..1000).step_by(100) {
            assert_eq!(idx.query(&Rect::new(x, 0, x + 1, 1)), vec![1]);
        }
    }

    #[test]
    fn duplicate_ids_are_deduped_in_query() {
        let mut idx = GridIndex::new(10);
        idx.insert(3, Rect::new(0, 0, 5, 5));
        idx.insert(3, Rect::new(5, 0, 12, 5));
        assert_eq!(idx.query(&Rect::new(0, 0, 12, 5)), vec![3]);
        assert_eq!(idx.query_entries(&Rect::new(0, 0, 12, 5)).len(), 2);
    }

    #[test]
    fn negative_coordinates_bucket_correctly() {
        let mut idx = GridIndex::new(100);
        idx.insert(0, Rect::new(-250, -250, -150, -150));
        assert_eq!(idx.query(&Rect::new(-200, -200, -190, -190)), vec![0]);
        assert!(idx.query(&Rect::new(0, 0, 10, 10)).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_size_panics() {
        let _ = GridIndex::new(0);
    }
}
