//! # geom — 2-D Manhattan geometry substrate
//!
//! Integer-nanometre rectilinear geometry used by the layout database,
//! the circuit extractor and the critical-area engine of the LIFT /
//! AnaFAULT reproduction.
//!
//! The coordinate space is `i64` nanometres ([`Coord`]). All shapes are
//! axis-aligned: [`Rect`] is the workhorse, [`Polygon`] is a rectilinear
//! polygon that can be decomposed into rectangles, and [`Region`] is a
//! canonicalised set of non-overlapping rectangles supporting boolean
//! operations. [`GridIndex`] provides the spatial queries LIFT needs to
//! find neighbouring shapes within a maximum defect diameter.
//!
//! ```
//! use geom::{Rect, Region};
//!
//! let a = Rect::new(0, 0, 100, 50);
//! let b = Rect::new(60, 0, 200, 50);
//! let union = Region::from_rects([a, b]);
//! assert_eq!(union.area(), 200 * 50);
//! ```

pub mod coord;
pub mod index;
pub mod polygon;
pub mod rect;
pub mod region;
pub mod separation;

pub use coord::{Coord, Point, Vector, NM_PER_UM};
pub use index::GridIndex;
pub use polygon::Polygon;
pub use rect::Rect;
pub use region::Region;
pub use separation::{edge_separation, parallel_run, Separation};
