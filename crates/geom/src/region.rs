//! Canonical rectangle sets with boolean operations.
//!
//! A [`Region`] stores a union of axis-aligned rectangles in a canonical
//! form: the rectangles are pairwise non-overlapping, produced by a
//! vertical-slab decomposition. This gives exact `area()`, `union`,
//! `intersection` and `subtract` over arbitrary inputs, which the
//! critical-area engine and the extractor rely on.

use crate::coord::Coord;
use crate::rect::Rect;

/// A set of points in the plane represented as disjoint rectangles.
///
/// ```
/// use geom::{Rect, Region};
/// let l_shape = Region::from_rects([
///     Rect::new(0, 0, 30, 10),
///     Rect::new(0, 0, 10, 30),
/// ]);
/// assert_eq!(l_shape.area(), 30 * 10 + 10 * 20);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Region {
    /// Disjoint rectangles, sorted by (x0, y0).
    rects: Vec<Rect>,
}

impl Region {
    /// The empty region.
    pub fn new() -> Self {
        Region::default()
    }

    /// Builds a canonical region from arbitrary, possibly overlapping
    /// rectangles.
    pub fn from_rects<I: IntoIterator<Item = Rect>>(rects: I) -> Self {
        let src: Vec<Rect> = rects.into_iter().filter(|r| !r.is_empty()).collect();
        Region {
            rects: canonicalise(&src),
        }
    }

    /// The disjoint rectangles of the canonical decomposition.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Iterates over the disjoint rectangles.
    pub fn iter(&self) -> core::slice::Iter<'_, Rect> {
        self.rects.iter()
    }

    /// True when the region contains no points.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Exact area in nm².
    pub fn area(&self) -> i128 {
        self.rects.iter().map(Rect::area).sum()
    }

    /// Bounding box of the whole region, `None` when empty.
    pub fn bounding_box(&self) -> Option<Rect> {
        let mut it = self.rects.iter();
        let first = *it.next()?;
        Some(it.fold(first, |acc, r| acc.bounding_union(r)))
    }

    /// Set union.
    pub fn union(&self, other: &Region) -> Region {
        let mut all = self.rects.clone();
        all.extend_from_slice(&other.rects);
        Region {
            rects: canonicalise(&all),
        }
    }

    /// Set intersection.
    pub fn intersection(&self, other: &Region) -> Region {
        let mut out = Vec::new();
        for a in &self.rects {
            for b in &other.rects {
                if let Some(i) = a.intersection(b) {
                    out.push(i);
                }
            }
        }
        Region {
            rects: canonicalise(&out),
        }
    }

    /// Set difference `self \ other`.
    pub fn subtract(&self, other: &Region) -> Region {
        let mut current = self.rects.clone();
        for b in &other.rects {
            let mut next = Vec::with_capacity(current.len());
            for a in current {
                subtract_rect(&a, b, &mut next);
            }
            current = next;
        }
        Region {
            rects: canonicalise(&current),
        }
    }

    /// True when point-set membership holds for `(x, y)` (boundary
    /// inclusive on the low edges, exclusive on high edges — half-open
    /// semantics consistent with area computations).
    pub fn contains(&self, x: Coord, y: Coord) -> bool {
        self.rects
            .iter()
            .any(|r| x >= r.x0() && x < r.x1() && y >= r.y0() && y < r.y1())
    }

    /// Region grown by `d` on every side of every rectangle (the result
    /// is re-canonicalised). Negative `d` shrinks each rectangle
    /// individually — note this is per-rectangle erosion, not true
    /// morphological erosion of the union, and is only used on canonical
    /// single-wire segments.
    pub fn expanded(&self, d: Coord) -> Region {
        Region::from_rects(self.rects.iter().map(|r| r.expanded(d)))
    }

    /// Splits the region into connected components (touching rectangles,
    /// edge or corner contact, belong to the same component).
    pub fn connected_components(&self) -> Vec<Region> {
        let n = self.rects.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let root = find(parent, parent[i]);
                parent[i] = root;
            }
            parent[i]
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if self.rects[i].touches(&self.rects[j]) {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<Rect>> = Default::default();
        for i in 0..n {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(self.rects[i]);
        }
        groups
            .into_values()
            .map(|rs| Region { rects: rs })
            .collect()
    }
}

impl FromIterator<Rect> for Region {
    fn from_iter<I: IntoIterator<Item = Rect>>(iter: I) -> Self {
        Region::from_rects(iter)
    }
}

impl Extend<Rect> for Region {
    fn extend<I: IntoIterator<Item = Rect>>(&mut self, iter: I) {
        let mut all = std::mem::take(&mut self.rects);
        all.extend(iter);
        self.rects = canonicalise(&all);
    }
}

impl<'a> IntoIterator for &'a Region {
    type Item = &'a Rect;
    type IntoIter = core::slice::Iter<'a, Rect>;
    fn into_iter(self) -> Self::IntoIter {
        self.rects.iter()
    }
}

/// Rebuilds a disjoint decomposition of the union of `src` using a
/// vertical-slab sweep: x-coordinates of all edges split the plane into
/// slabs; within each slab the covered y-intervals are merged.
fn canonicalise(src: &[Rect]) -> Vec<Rect> {
    if src.is_empty() {
        return Vec::new();
    }
    let mut xs: Vec<Coord> = src.iter().flat_map(|r| [r.x0(), r.x1()]).collect();
    xs.sort_unstable();
    xs.dedup();

    let mut out: Vec<Rect> = Vec::new();
    for w in xs.windows(2) {
        let (sx0, sx1) = (w[0], w[1]);
        if sx0 == sx1 {
            continue;
        }
        // Collect y-intervals of rectangles covering this slab.
        let mut ys: Vec<(Coord, Coord)> = src
            .iter()
            .filter(|r| r.x0() <= sx0 && r.x1() >= sx1)
            .map(|r| (r.y0(), r.y1()))
            .collect();
        ys.sort_unstable();
        let mut merged: Vec<(Coord, Coord)> = Vec::new();
        for (y0, y1) in ys {
            match merged.last_mut() {
                Some((_, me)) if y0 <= *me => *me = (*me).max(y1),
                _ => merged.push((y0, y1)),
            }
        }
        for (y0, y1) in merged {
            // Horizontal coalescing: extend the previous slab's rect when
            // it lines up exactly.
            if let Some(prev) = out
                .iter_mut()
                .rev()
                .find(|r| r.x1() == sx0 && r.y0() == y0 && r.y1() == y1)
            {
                *prev = Rect::new(prev.x0(), y0, sx1, y1);
            } else {
                out.push(Rect::new(sx0, y0, sx1, y1));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Pushes the parts of `a` not covered by `b` onto `out` (up to four
/// pieces).
fn subtract_rect(a: &Rect, b: &Rect, out: &mut Vec<Rect>) {
    let Some(i) = a.intersection(b) else {
        out.push(*a);
        return;
    };
    // Bottom band.
    if a.y0() < i.y0() {
        out.push(Rect::new(a.x0(), a.y0(), a.x1(), i.y0()));
    }
    // Top band.
    if i.y1() < a.y1() {
        out.push(Rect::new(a.x0(), i.y1(), a.x1(), a.y1()));
    }
    // Left band (middle slab only).
    if a.x0() < i.x0() {
        out.push(Rect::new(a.x0(), i.y0(), i.x0(), i.y1()));
    }
    // Right band (middle slab only).
    if i.x1() < a.x1() {
        out.push(Rect::new(i.x1(), i.y0(), a.x1(), i.y1()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_of_overlapping_rects_has_exact_area() {
        let r = Region::from_rects([Rect::new(0, 0, 10, 10), Rect::new(5, 5, 15, 15)]);
        assert_eq!(r.area(), 100 + 100 - 25);
    }

    #[test]
    fn union_is_idempotent() {
        let r = Region::from_rects([Rect::new(0, 0, 10, 10)]);
        let u = r.union(&r);
        assert_eq!(u.area(), 100);
        assert_eq!(u, r);
    }

    #[test]
    fn intersection_and_subtraction_partition_area() {
        let a = Region::from_rects([Rect::new(0, 0, 20, 20)]);
        let b = Region::from_rects([Rect::new(10, 10, 30, 30)]);
        let i = a.intersection(&b);
        let d = a.subtract(&b);
        assert_eq!(i.area(), 100);
        assert_eq!(d.area(), 400 - 100);
        assert_eq!(i.area() + d.area(), a.area());
        // subtract ∩ intersection must be empty
        assert!(d.intersection(&i).is_empty());
    }

    #[test]
    fn subtract_hole_produces_frame() {
        let outer = Region::from_rects([Rect::new(0, 0, 30, 30)]);
        let hole = Region::from_rects([Rect::new(10, 10, 20, 20)]);
        let frame = outer.subtract(&hole);
        assert_eq!(frame.area(), 900 - 100);
        assert!(!frame.contains(15, 15));
        assert!(frame.contains(5, 5));
    }

    #[test]
    fn contains_uses_half_open_semantics() {
        let r = Region::from_rects([Rect::new(0, 0, 10, 10)]);
        assert!(r.contains(0, 0));
        assert!(!r.contains(10, 10));
    }

    #[test]
    fn connected_components_split() {
        let r = Region::from_rects([
            Rect::new(0, 0, 10, 10),
            Rect::new(10, 0, 20, 10), // touches the first
            Rect::new(100, 100, 110, 110),
        ]);
        let comps = r.connected_components();
        assert_eq!(comps.len(), 2);
        let areas: Vec<i128> = comps.iter().map(|c| c.area()).collect();
        assert!(areas.contains(&200) && areas.contains(&100));
    }

    #[test]
    fn bounding_box_spans_region() {
        let r = Region::from_rects([Rect::new(0, 0, 1, 1), Rect::new(50, -3, 60, 2)]);
        assert_eq!(r.bounding_box(), Some(Rect::new(0, -3, 60, 2)));
        assert_eq!(Region::new().bounding_box(), None);
    }

    #[test]
    fn extend_recanonicalises() {
        let mut r = Region::from_rects([Rect::new(0, 0, 10, 10)]);
        r.extend([Rect::new(5, 0, 15, 10)]);
        assert_eq!(r.area(), 150);
    }
}
