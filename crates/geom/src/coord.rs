//! Coordinate scalars, points and vectors.
//!
//! All geometry in this workspace is expressed in integer nanometres to
//! keep boolean operations and critical-area arithmetic exact. One
//! micrometre is [`NM_PER_UM`] database units.

/// Scalar coordinate in nanometres.
pub type Coord = i64;

/// Number of database units (nanometres) per micrometre.
pub const NM_PER_UM: Coord = 1_000;

/// A point in the layout plane, in nanometres.
///
/// ```
/// use geom::Point;
/// let p = Point::new(10, 20);
/// assert_eq!(p.x, 10);
/// assert_eq!(p + geom::Vector::new(5, -5), Point::new(15, 15));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Point {
    /// Horizontal coordinate (nm).
    pub x: Coord,
    /// Vertical coordinate (nm).
    pub y: Coord,
}

/// A displacement in the layout plane, in nanometres.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Vector {
    /// Horizontal component (nm).
    pub dx: Coord,
    /// Vertical component (nm).
    pub dy: Coord,
}

impl Point {
    /// Creates a point from `x`/`y` nanometre coordinates.
    pub const fn new(x: Coord, y: Coord) -> Self {
        Point { x, y }
    }

    /// Creates a point from micrometre coordinates (scaled by [`NM_PER_UM`]).
    pub const fn from_um(x_um: Coord, y_um: Coord) -> Self {
        Point::new(x_um * NM_PER_UM, y_um * NM_PER_UM)
    }

    /// Squared Euclidean distance to `other`, in nm².
    pub fn distance_sq(&self, other: Point) -> i128 {
        let dx = (self.x - other.x) as i128;
        let dy = (self.y - other.y) as i128;
        dx * dx + dy * dy
    }

    /// Manhattan (L1) distance to `other`.
    pub fn manhattan_distance(&self, other: Point) -> Coord {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

impl Vector {
    /// Creates a vector from `dx`/`dy` nanometre components.
    pub const fn new(dx: Coord, dy: Coord) -> Self {
        Vector { dx, dy }
    }
}

impl core::ops::Add<Vector> for Point {
    type Output = Point;
    fn add(self, v: Vector) -> Point {
        Point::new(self.x + v.dx, self.y + v.dy)
    }
}

impl core::ops::Sub<Vector> for Point {
    type Output = Point;
    fn sub(self, v: Vector) -> Point {
        Point::new(self.x - v.dx, self.y - v.dy)
    }
}

impl core::ops::Sub<Point> for Point {
    type Output = Vector;
    fn sub(self, p: Point) -> Vector {
        Vector::new(self.x - p.x, self.y - p.y)
    }
}

impl core::ops::Neg for Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        Vector::new(-self.dx, -self.dy)
    }
}

impl core::fmt::Display for Point {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic() {
        let p = Point::new(3, 4);
        let q = p + Vector::new(1, -1);
        assert_eq!(q, Point::new(4, 3));
        assert_eq!(q - p, Vector::new(1, -1));
        assert_eq!(p - Vector::new(3, 4), Point::new(0, 0));
    }

    #[test]
    fn micron_scaling() {
        assert_eq!(Point::from_um(2, 3), Point::new(2_000, 3_000));
    }

    #[test]
    fn distances() {
        let a = Point::new(0, 0);
        let b = Point::new(3, 4);
        assert_eq!(a.distance_sq(b), 25);
        assert_eq!(a.manhattan_distance(b), 7);
    }

    #[test]
    fn vector_negation() {
        assert_eq!(-Vector::new(2, -5), Vector::new(-2, 5));
    }
}
