//! Rectilinear polygons and their rectangle decomposition.
//!
//! GDSII `BOUNDARY` records carry arbitrary rectilinear outlines; the
//! extractor and critical-area engine work on rectangles, so polygons
//! are decomposed on import via a horizontal-slab sweep.

use crate::coord::{Coord, Point};
use crate::rect::Rect;
use crate::region::Region;

/// Error produced when a vertex list does not describe a rectilinear
/// polygon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolygonError {
    /// Fewer than four vertices.
    TooFewVertices(usize),
    /// An edge is neither horizontal nor vertical.
    NonRectilinearEdge { from: Point, to: Point },
    /// Consecutive duplicate vertex.
    DuplicateVertex(Point),
}

impl core::fmt::Display for PolygonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PolygonError::TooFewVertices(n) => {
                write!(f, "rectilinear polygon needs at least 4 vertices, got {n}")
            }
            PolygonError::NonRectilinearEdge { from, to } => {
                write!(f, "edge {from} -> {to} is neither horizontal nor vertical")
            }
            PolygonError::DuplicateVertex(p) => write!(f, "duplicate consecutive vertex {p}"),
        }
    }
}

impl std::error::Error for PolygonError {}

/// A simple rectilinear polygon given by its vertex ring (implicitly
/// closed; the last vertex connects back to the first).
///
/// ```
/// use geom::{Point, Polygon};
/// // An L-shape.
/// let poly = Polygon::new(vec![
///     Point::new(0, 0), Point::new(30, 0), Point::new(30, 10),
///     Point::new(10, 10), Point::new(10, 30), Point::new(0, 30),
/// ])?;
/// assert_eq!(poly.to_region().area(), 30 * 10 + 10 * 20);
/// # Ok::<(), geom::polygon::PolygonError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Validates and wraps a vertex ring.
    ///
    /// # Errors
    /// Returns [`PolygonError`] when the ring has fewer than four
    /// vertices, repeats a vertex consecutively, or contains a diagonal
    /// edge.
    pub fn new(vertices: Vec<Point>) -> Result<Self, PolygonError> {
        // Drop an explicitly repeated closing vertex (GDSII convention).
        let mut v = vertices;
        if v.len() >= 2 && v.first() == v.last() {
            v.pop();
        }
        if v.len() < 4 {
            return Err(PolygonError::TooFewVertices(v.len()));
        }
        for i in 0..v.len() {
            let a = v[i];
            let b = v[(i + 1) % v.len()];
            if a == b {
                return Err(PolygonError::DuplicateVertex(a));
            }
            if a.x != b.x && a.y != b.y {
                return Err(PolygonError::NonRectilinearEdge { from: a, to: b });
            }
        }
        Ok(Polygon { vertices: v })
    }

    /// A rectangle as a four-vertex polygon.
    pub fn from_rect(r: Rect) -> Self {
        Polygon {
            vertices: vec![
                Point::new(r.x0(), r.y0()),
                Point::new(r.x1(), r.y0()),
                Point::new(r.x1(), r.y1()),
                Point::new(r.x0(), r.y1()),
            ],
        }
    }

    /// The vertex ring (without a repeated closing vertex).
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Bounding box of the outline.
    pub fn bounding_box(&self) -> Rect {
        let xs = self.vertices.iter().map(|p| p.x);
        let ys = self.vertices.iter().map(|p| p.y);
        Rect::new(
            xs.clone().min().unwrap_or(0),
            ys.clone().min().unwrap_or(0),
            xs.max().unwrap_or(0),
            ys.max().unwrap_or(0),
        )
    }

    /// Decomposes the polygon interior into a canonical [`Region`] using
    /// a horizontal slab sweep with even-odd filling.
    pub fn to_region(&self) -> Region {
        // Vertical edges sorted for the even-odd parity test per slab.
        let n = self.vertices.len();
        let mut vert_edges: Vec<(Coord, Coord, Coord)> = Vec::new(); // (x, y_lo, y_hi)
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if a.x == b.x {
                vert_edges.push((a.x, a.y.min(b.y), a.y.max(b.y)));
            }
        }
        let mut ys: Vec<Coord> = self.vertices.iter().map(|p| p.y).collect();
        ys.sort_unstable();
        ys.dedup();

        let mut rects = Vec::new();
        for w in ys.windows(2) {
            let (y0, y1) = (w[0], w[1]);
            if y0 == y1 {
                continue;
            }
            // x-positions of vertical edges spanning this slab.
            let mut xs: Vec<Coord> = vert_edges
                .iter()
                .filter(|(_, lo, hi)| *lo <= y0 && *hi >= y1)
                .map(|(x, _, _)| *x)
                .collect();
            xs.sort_unstable();
            // Even-odd: pair up crossings.
            for pair in xs.chunks(2) {
                if let [x0, x1] = pair {
                    rects.push(Rect::new(*x0, y0, *x1, y1));
                }
            }
        }
        Region::from_rects(rects)
    }

    /// Interior area in nm².
    pub fn area(&self) -> i128 {
        self.to_region().area()
    }
}

impl From<Rect> for Polygon {
    fn from(r: Rect) -> Self {
        Polygon::from_rect(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Polygon {
        Polygon::new(vec![
            Point::new(0, 0),
            Point::new(30, 0),
            Point::new(30, 10),
            Point::new(10, 10),
            Point::new(10, 30),
            Point::new(0, 30),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_diagonal_edges() {
        let err = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(10, 10),
            Point::new(10, 0),
            Point::new(0, 5),
        ])
        .unwrap_err();
        assert!(matches!(err, PolygonError::NonRectilinearEdge { .. }));
    }

    #[test]
    fn rejects_tiny_rings() {
        assert!(matches!(
            Polygon::new(vec![Point::new(0, 0), Point::new(1, 0), Point::new(0, 0)]),
            Err(PolygonError::TooFewVertices(_))
        ));
    }

    #[test]
    fn accepts_closed_ring_convention() {
        // GDSII repeats the first point at the end; we tolerate it.
        let p = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(10, 0),
            Point::new(10, 10),
            Point::new(0, 10),
            Point::new(0, 0),
        ])
        .unwrap();
        assert_eq!(p.vertices().len(), 4);
        assert_eq!(p.area(), 100);
    }

    #[test]
    fn l_shape_decomposition_area() {
        let poly = l_shape();
        assert_eq!(poly.area(), 300 + 200);
        assert_eq!(poly.bounding_box(), Rect::new(0, 0, 30, 30));
    }

    #[test]
    fn u_shape_decomposition() {
        // A "U": 30 wide, 30 tall, with a 10-wide notch from the top.
        let poly = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(30, 0),
            Point::new(30, 30),
            Point::new(20, 30),
            Point::new(20, 10),
            Point::new(10, 10),
            Point::new(10, 30),
            Point::new(0, 30),
        ])
        .unwrap();
        assert_eq!(poly.area(), 900 - 200);
        let reg = poly.to_region();
        assert!(!reg.contains(15, 20)); // inside the notch
        assert!(reg.contains(5, 20));
        assert!(reg.contains(15, 5));
    }

    #[test]
    fn rect_round_trip() {
        let r = Rect::new(3, 4, 17, 9);
        let p = Polygon::from_rect(r);
        let reg = p.to_region();
        assert_eq!(reg.rects(), &[r]);
    }
}
