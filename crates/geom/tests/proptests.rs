//! Property-based tests for the geometry substrate.
//!
//! These pin down the algebraic invariants the extractor and critical
//! area engine rely on: exact areas under boolean operations, symmetry
//! of separations, and canonical-form stability.

use geom::{edge_separation, Rect, Region};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (-500i64..500, -500i64..500, 1i64..200, 1i64..200)
        .prop_map(|(x, y, w, h)| Rect::from_wh(x, y, w, h))
}

fn arb_rects(max: usize) -> impl Strategy<Value = Vec<Rect>> {
    proptest::collection::vec(arb_rect(), 1..max)
}

proptest! {
    #[test]
    fn union_area_never_exceeds_sum(rects in arb_rects(12)) {
        let sum: i128 = rects.iter().map(Rect::area).sum();
        let region = Region::from_rects(rects.iter().copied());
        prop_assert!(region.area() <= sum);
        let max_single = rects.iter().map(Rect::area).max().unwrap_or(0);
        prop_assert!(region.area() >= max_single);
    }

    #[test]
    fn canonicalisation_is_idempotent(rects in arb_rects(10)) {
        let r1 = Region::from_rects(rects.iter().copied());
        let r2 = Region::from_rects(r1.rects().iter().copied());
        prop_assert_eq!(r1.area(), r2.area());
        // Canonical rectangles are pairwise non-overlapping.
        let rs = r1.rects();
        for i in 0..rs.len() {
            for j in (i + 1)..rs.len() {
                prop_assert!(!rs[i].overlaps(&rs[j]), "{} overlaps {}", rs[i], rs[j]);
            }
        }
    }

    #[test]
    fn subtract_then_union_restores(a in arb_rects(8), b in arb_rects(8)) {
        let ra = Region::from_rects(a.iter().copied());
        let rb = Region::from_rects(b.iter().copied());
        let diff = ra.subtract(&rb);
        let inter = ra.intersection(&rb);
        // A = (A \ B) ∪ (A ∩ B), disjointly.
        prop_assert_eq!(diff.area() + inter.area(), ra.area());
        prop_assert!(diff.intersection(&inter).is_empty());
        let rebuilt = diff.union(&inter);
        prop_assert_eq!(rebuilt.area(), ra.area());
    }

    #[test]
    fn intersection_commutes(a in arb_rects(6), b in arb_rects(6)) {
        let ra = Region::from_rects(a.iter().copied());
        let rb = Region::from_rects(b.iter().copied());
        prop_assert_eq!(ra.intersection(&rb).area(), rb.intersection(&ra).area());
    }

    #[test]
    fn union_commutes_and_is_monotone(a in arb_rects(6), b in arb_rects(6)) {
        let ra = Region::from_rects(a.iter().copied());
        let rb = Region::from_rects(b.iter().copied());
        let u1 = ra.union(&rb);
        let u2 = rb.union(&ra);
        prop_assert_eq!(u1.area(), u2.area());
        prop_assert!(u1.area() >= ra.area().max(rb.area()));
    }

    #[test]
    fn separation_is_symmetric(a in arb_rect(), b in arb_rect()) {
        let s_ab = edge_separation(&a, &b);
        let s_ba = edge_separation(&b, &a);
        prop_assert_eq!(s_ab.spacing, s_ba.spacing);
        prop_assert_eq!(s_ab.parallel_length, s_ba.parallel_length);
    }

    #[test]
    fn separation_matches_rect_separation_when_apart(a in arb_rect(), b in arb_rect()) {
        let s = edge_separation(&a, &b);
        let raw = a.separation(&b);
        if raw > 0 {
            prop_assert_eq!(s.spacing, raw);
        } else {
            prop_assert_eq!(s.spacing, 0);
        }
    }

    #[test]
    fn rect_intersection_is_contained(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert!(i.area() <= a.area().min(b.area()));
        }
    }

    #[test]
    fn connected_components_partition_area(rects in arb_rects(8)) {
        let region = Region::from_rects(rects.iter().copied());
        let comps = region.connected_components();
        let total: i128 = comps.iter().map(|c| c.area()).sum();
        prop_assert_eq!(total, region.area());
    }
}
