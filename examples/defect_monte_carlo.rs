//! Inductive fault analysis the original way: throw random spot
//! defects at two parallel wires and compare the Monte Carlo bridge
//! probability against LIFT's analytic critical-area integral.
//!
//! Run with: `cargo run --example defect_monte_carlo`

use defect::critical::{weighted_bridge_area, weighted_bridge_area_exact};
use defect::montecarlo::mc_bridge_area;
use defect::SizeDistribution;
use geom::{Rect, Region};
use rand::SeedableRng;

fn main() {
    let dist = SizeDistribution::new(1_000, 20_000);
    println!("two 30 µm wires, sweeping the spacing; size pdf 2x0²/x³, x0 = 1 µm\n");
    println!(
        "{:>10} {:>16} {:>16} {:>16}",
        "spacing", "closed form", "exact integral", "Monte Carlo"
    );
    println!("{}", "-".repeat(62));
    let mut rng = rand::rngs::StdRng::seed_from_u64(1995);
    for spacing in [1_500i64, 2_000, 3_000, 5_000, 8_000, 12_000] {
        let a = Region::from_rects([Rect::new(0, 0, 30_000, 1_500)]);
        let b = Region::from_rects([Rect::new(0, 1_500 + spacing, 30_000, 3_000 + spacing)]);
        let closed = weighted_bridge_area(30_000.0, spacing as f64, &dist);
        let exact = weighted_bridge_area_exact(&a, &b, &dist, 200);
        let window = Rect::new(-15_000, -15_000, 45_000, 20_000 + spacing);
        let mc = mc_bridge_area(&mut rng, &a, &b, &window, &dist, 300_000);
        println!(
            "{:>8} nm {:>13.0} nm² {:>13.0} nm² {:>13.0} nm²",
            spacing, closed, exact, mc
        );
    }
    println!("\nthe closed form ignores wrap-around at wire ends, so the exact");
    println!("integral sits slightly above it; Monte Carlo agrees with the");
    println!("exact construction within sampling noise. Multiply by the Tab. 1");
    println!("defect density to get the fault probability p_j LIFT reports.");
}
