//! Demonstrates every fault type of the paper's Fig. 2 on a small
//! resistor network: local short, global short, local open (terminal),
//! split node, and a parametric (soft) deviation — under both hard
//! fault models.
//!
//! Run with: `cargo run --example fault_types`

use anafault::{inject, Fault, FaultEffect, HardFaultModel};
use spice::parser::parse_netlist;
use spice::tran::{tran, TranSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = parse_netlist(
        "fig2 demo ladder\n\
         V1 in 0 dc 10\n\
         R1 in a 1k\n\
         R2 a b 1k\n\
         R3 b out 1k\n\
         R4 out 0 1k\n\
         .end\n",
    )?;
    let spec = TranSpec::new(1e-6, 1e-5);
    let v = |ckt: &spice::Circuit, node: &str| -> f64 {
        tran(ckt, &spec)
            .expect("simulates")
            .wave(node)
            .expect("node")
            .last_value()
    };
    println!(
        "nominal: v(a) = {:.3}  v(b) = {:.3}  v(out) = {:.3}\n",
        v(&base, "a"),
        v(&base, "b"),
        v(&base, "out")
    );

    let faults = [
        Fault::new(
            1,
            "local short across R2 (element terminals)",
            FaultEffect::ElementShort {
                element: "R2".into(),
                t1: 0,
                t2: 1,
            },
        ),
        Fault::new(
            2,
            "global short in->out (arbitrary node pair)",
            FaultEffect::Short {
                a: "in".into(),
                b: "out".into(),
            },
        ),
        Fault::new(
            3,
            "local open at R3 terminal 0",
            FaultEffect::OpenTerminal {
                element: "R3".into(),
                terminal: 0,
            },
        ),
        Fault::new(
            4,
            "split node a: order 2 -> 1 + 1",
            FaultEffect::SplitNode {
                node: "a".into(),
                move_terminals: vec![("R2".into(), 0)],
            },
        ),
        Fault::new(
            5,
            "soft fault: R4 drifts +100%",
            FaultEffect::ParamDeviation {
                element: "R4".into(),
                factor: 2.0,
            },
        ),
    ];

    for model in [HardFaultModel::paper_resistor(), HardFaultModel::Source] {
        println!("--- fault model: {model:?}");
        for fault in &faults {
            let faulty = inject(&base, fault, model)?;
            println!(
                "  #{} {:<46} v(out) = {:.3} V",
                fault.id,
                fault.label,
                v(&faulty, "out")
            );
        }
        println!();
    }
    println!("both models agree on the electrical outcome; they differ in");
    println!("simulation cost (see `cargo run -p bench --bin tab_runtime`).");
    Ok(())
}
