//! The Fig. 6 exploration as an interactive-style example: how the
//! chosen bridging resistance changes the faulty VCO waveform, and why
//! the paper concludes the "optimal" modelling resistance depends on
//! the fault location.
//!
//! Run with: `cargo run --release --example bridge_resistance_sweep`

use anafault::{inject, Fault, FaultEffect, HardFaultModel};
use spice::tran::tran;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (_, tb) = bench_setup()?;
    let spec = spice::tran::TranSpec::new(10e-9, 4e-6).with_uic();

    println!("bridge: Schmitt trigger M11 drain (supply rail) -> ground");
    println!("{:>10} {:>14} {:>10}", "R [ohm]", "f [kHz]", "Vpp [V]");
    println!("{}", "-".repeat(38));
    for r in [10_000.0, 1_000.0, 300.0, 100.0, 41.0, 21.0, 5.0, 1.0] {
        let fault = Fault::new(
            1,
            "BRI vdd->0",
            FaultEffect::Short {
                a: "vdd".into(),
                b: "0".into(),
            },
        );
        let model = HardFaultModel::Resistor {
            r_short: r,
            r_open: 100e6,
        };
        let faulty = inject(&tb, &fault, model)?;
        let wave = tran(&faulty, &spec)?
            .wave(vco::OBSERVED_NODE)
            .expect("output exists");
        let f = wave
            .frequency()
            .map(|f| format!("{:.0}", f / 1e3))
            .unwrap_or_else(|| "dead".into());
        println!("{r:>10} {f:>14} {:>10.2}", wave.amplitude());
    }
    println!("\ncompare a *signal* node bridge, where even 1 kΩ is fatal:");
    println!("{:>10} {:>14} {:>10}", "R [ohm]", "f [kHz]", "Vpp [V]");
    println!("{}", "-".repeat(38));
    for r in [100_000.0, 10_000.0, 1_000.0, 100.0] {
        let fault = Fault::new(
            2,
            "BRI 9->0",
            FaultEffect::Short {
                a: "9".into(),
                b: "0".into(),
            },
        );
        let model = HardFaultModel::Resistor {
            r_short: r,
            r_open: 100e6,
        };
        let faulty = inject(&tb, &fault, model)?;
        let wave = tran(&faulty, &spec)?
            .wave(vco::OBSERVED_NODE)
            .expect("output exists");
        let f = wave
            .frequency()
            .map(|f| format!("{:.0}", f / 1e3))
            .unwrap_or_else(|| "dead".into());
        println!("{r:>10} {f:>14} {:>10.2}", wave.amplitude());
    }
    Ok(())
}

/// Extract the VCO and attach the paper's sources.
fn bench_setup() -> Result<(cat_core::CatSystem, spice::Circuit), Box<dyn std::error::Error>> {
    let (flat, tech) = vco::vco_layout();
    let sys = cat_core::CatSystem::from_layout(
        &flat,
        &tech,
        &extract::ExtractOptions::default(),
        &lift::LiftOptions::default(),
    )?;
    let mut tb = sys.circuit.clone();
    vco::attach_sources(&mut tb, &vco::TestbenchParams::default());
    Ok((sys, tb))
}
