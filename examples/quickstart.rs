//! Quickstart: the complete CAT flow on a small hand-made layout.
//!
//! Builds a CMOS inverter layout, extracts its circuit, runs LIFT to
//! get a ranked realistic fault list, then simulates every fault with
//! AnaFAULT and prints the coverage report.
//!
//! Run with: `cargo run --example quickstart`

use anafault::report::protocol_table;
use anafault::{DetectionSpec, HardFaultModel};
use cat_core::CatSystem;
use extract::ExtractOptions;
use geom::Point;
use layout::{CellBuilder, Layer, Library, MosParams, MosStyle, Technology};
use lift::LiftOptions;
use spice::tran::TranSpec;
use spice::{ElementKind, Waveform};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Draw a CMOS inverter: NMOS at the origin, PMOS above, gates
    //    tied in poly, drains tied in metal-1.
    let tech = Technology::generic_1um();
    let mut b = CellBuilder::new("inv", &tech);
    let n = b.mosfet(
        Point::new(0, 0),
        &MosParams {
            w: 3_000,
            l: 1_000,
            style: MosStyle::Nmos,
        },
    );
    let p = b.mosfet(
        Point::new(0, 25_000),
        &MosParams {
            w: 6_000,
            l: 1_000,
            style: MosStyle::Pmos,
        },
    );
    b.min_wire(
        Layer::Poly,
        &[
            Point::new(0, n.gate_stub.y1()),
            Point::new(0, p.gate_stub.y0() + 24_000),
        ],
    );
    b.min_wire(Layer::Metal1, &[n.drain_pad.center(), p.drain_pad.center()]);
    b.wire(
        Layer::Metal1,
        &[
            n.source_pad.center(),
            Point::new(n.source_pad.center().x, -12_000),
        ],
        1_500,
    );
    b.wire(
        Layer::Metal1,
        &[
            p.source_pad.center(),
            Point::new(p.source_pad.center().x, 40_000),
        ],
        1_500,
    );
    b.label(Layer::Poly, Point::new(0, 8_000), "in");
    b.label(Layer::Metal1, n.drain_pad.center(), "out");
    b.label(
        Layer::Metal1,
        Point::new(n.source_pad.center().x, -11_000),
        "0",
    );
    b.label(
        Layer::Metal1,
        Point::new(p.source_pad.center().x, 39_000),
        "vdd",
    );
    let mut lib = Library::new("quickstart");
    lib.add_cell(b.finish());
    let flat = lib.flatten("inv")?;

    // 2. Extract + LIFT in one step.
    let lift_options = LiftOptions {
        ports: vec!["vdd".into(), "0".into(), "in".into(), "out".into()],
        p_min: 1e-10, // keep everything — it is a tiny cell
        ..LiftOptions::default()
    };
    let sys = CatSystem::from_layout(&flat, &tech, &ExtractOptions::default(), &lift_options)?;
    println!(
        "extracted {} transistors, {} nets",
        sys.netlist.mosfets.len(),
        sys.netlist.net_count()
    );
    println!(
        "LIFT found {} realistic faults ({} bridges, {} line opens, {} stuck-opens)\n",
        sys.lift.stats.total(),
        sys.lift.stats.bridges,
        sys.lift.stats.line_opens,
        sys.lift.stats.stuck_opens
    );
    for f in &sys.lift.faults {
        println!(
            "  #{:<3} p = {:.2e}  {}",
            f.id, f.probability, f.fault.label
        );
    }

    // 3. Testbench: 5 V supply, 1 MHz square wave input, watch `out`.
    let mut tb = sys.circuit.clone();
    let vdd = tb.node("vdd");
    let inp = tb.node("in");
    let out = tb.node("out");
    tb.add(
        "VDD",
        vec![vdd, spice::Circuit::GROUND],
        ElementKind::Vsource {
            wave: Waveform::Dc(5.0),
        },
    );
    tb.add(
        "VIN",
        vec![inp, spice::Circuit::GROUND],
        ElementKind::Vsource {
            wave: Waveform::Pulse {
                v1: 0.0,
                v2: 5.0,
                td: 0.0,
                tr: 10e-9,
                tf: 10e-9,
                pw: 0.5e-6,
                period: 1e-6,
            },
        },
    );
    tb.add(
        "CL",
        vec![out, spice::Circuit::GROUND],
        ElementKind::Capacitor {
            c: 100e-15,
            ic: None,
        },
    );

    // 4. Fault simulation campaign: builder-configured, streaming one
    //    progress event per completed fault, dropping each fault as
    //    soon as it is detected.
    let campaign = sys
        .campaign_builder()
        .testbench(tb)
        .tran(TranSpec::new(5e-9, 3e-6))
        .observe("out")
        .detection(DetectionSpec {
            v_tol: 1.0,
            t_tol: 50e-9,
        })
        .model(HardFaultModel::paper_resistor())
        .early_stop(true)
        .build()?;
    let result = sys.simulate_with_progress(&campaign, |p| {
        eprintln!("  [{}/{}] {}", p.completed, p.total, p.record.fault);
    })?;
    println!("\n{}", protocol_table(&result));
    Ok(())
}
