//! The paper's headline experiment end to end: generate the VCO
//! layout, write/read it through GDSII, extract, run LIFT, simulate
//! the full realistic fault list and print the coverage plot.
//!
//! Run with: `cargo run --release --example vco_fault_campaign`

use anafault::report::{coverage_plot, protocol_table};
use anafault::{DetectionSpec, HardFaultModel};
use cat_core::CatSystem;
use extract::ExtractOptions;
use spice::tran::TranSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Layout -> GDSII -> layout: prove the interchange format works.
    // Progress goes to stderr so `--json` leaves stdout as one clean
    // protocol document.
    let (lib, tech) = vco::vco_library();
    let gds = layout::gds::write_library(&lib)?;
    eprintln!("VCO layout: {} bytes of GDSII", gds.len());
    let lib = layout::gds::read_library(&gds)?;
    let flat = lib.flatten("vco")?;

    // Extraction + LIFT with the paper's defect statistics.
    let lift_options = lift::LiftOptions {
        ports: vec!["vdd".into(), "0".into(), "1".into(), "11".into()],
        size_dist: defect::SizeDistribution::new(1_000, 10_000),
        p_min: 3e-8,
        ..lift::LiftOptions::default()
    };
    let sys = CatSystem::from_layout(&flat, &tech, &ExtractOptions::default(), &lift_options)?;
    eprintln!(
        "extracted {} transistors / {} nets; LIFT kept {} of {} candidates",
        sys.netlist.mosfets.len(),
        sys.netlist.net_count(),
        sys.lift.stats.total(),
        sys.lift.stats.candidates,
    );

    // The paper's stimulus: supply ramp, constant control voltage.
    let mut tb = sys.circuit.clone();
    vco::attach_sources(&mut tb, &vco::TestbenchParams::default());

    let campaign = sys
        .campaign_builder()
        .testbench(tb)
        .tran(TranSpec::new(10e-9, 4e-6).with_uic())
        .observe(vco::OBSERVED_NODE)
        .detection(DetectionSpec::paper_fig5())
        .model(HardFaultModel::paper_resistor())
        .build()?;
    let (result, report) = sys.simulate_reported(&campaign)?;

    // `--json` emits the machine-readable protocol file instead of the
    // hand-formatted tables.
    if std::env::args().any(|a| a == "--json") {
        print!("{}", anafault::protocol::to_json(&result));
        return Ok(());
    }
    println!("\n{}", protocol_table(&result));
    let samples: Vec<f64> = (0..=100).map(|i| i as f64 * 4e-8).collect();
    println!(
        "{}",
        coverage_plot(&result.coverage_curve(&samples), 80, 14)
    );
    // How much work the solver shared across the campaign.
    println!(
        "solver: {} symbolic patterns for {} faults ({} cache hits), \
         {} refactorisations, {} Newton iterations over {} steps",
        report.telemetry.pattern_cache_entries,
        report.faults,
        report.telemetry.pattern_cache_hits,
        report.solver.refactorisations,
        report.newton_iterations,
        report.steps,
    );
    Ok(())
}
